// Delta-driven wakeup evaluation for parked delayed transactions (ROADMAP
// item 2, modeled on OVN's incremental processing engine and its
// lflow-cache fallback/trim discipline).
//
// The problem: a parked delayed transaction re-runs its full predicate —
// candidate enumeration, joins, guards — on every wakeup, so a wakeup
// check costs O(window) when the commit that woke it changed one effect
// set (E13 measured failing guards as *the* hot path at scale).
//
// The design rests on a monotonicity argument instead of materialized
// join state. For a parked query in the MONOTONE FRAGMENT — Exists
// quantifier, no negated groups — with its environment frozen (the
// process is parked; only the process itself mutates its env):
//
//   A full evaluation that failed at time T0 can only become satisfiable
//   at T1 > T0 if some satisfying assignment uses at least one tuple
//   ASSERTED in (T0, T1]. Retracts can never enable it: candidates only
//   shrink, the T0 enumeration was exhaustive over then-live tuples, and
//   guards are deterministic over bindings.
//
// So the retained state per parked query is just the accumulated delta of
// relevant asserts since the last failed evaluation (filtered by the
// query's per-pattern KeySpecs), and a wakeup check is:
//
//   * delta empty and state valid  -> still parked, ZERO evaluation;
//   * delta non-empty              -> seeded satisfiability check under
//     the engine's read locks: for each pattern index with relevant
//     entries, enumerate the join with THAT pattern's candidates
//     restricted to the (liveness-checked) delta instances. All seeded
//     checks false  => provably still unsatisfiable => stay parked.
//     Any true      => fall through to the full execute(), which rebinds
//     from scratch — bindings are identical to the always-full path by
//     construction.
//
// Soundness of the capture window: states are attached at subscribe time
// and the subscribe-first discipline puts the subscription before the
// failed evaluation, so the accumulated delta is a SUPERSET of the
// asserts since the evaluation (stale extra entries fail the liveness
// probe or simply re-fail the seeded check — conservative, never wrong).
// A commit whose publish races a wakeup check either lands its entries
// before the check's swap (they are checked) or after (they stay pending
// and its wake re-queues the process — the existing lost-wakeup
// discipline).
//
// Everything outside the monotone fragment falls back to the full
// re-evaluation path, counted per reason (OVN's explicit full-recompute
// fallback): ForAll/negations never create state (`nonmonotone`),
// view-scoped processes never create state (`view`), a publish that
// carries no delta payload — Engine::exclusive composites, consensus
// fires, seeds — invalidates every state it reaches (`no_delta`), a delta
// batch past the recompute-cheaper threshold invalidates (`batch`), and
// per-state / global byte caps trim retained state under memory pressure
// (`capacity`, the lflow-cache discipline).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "query/query.hpp"

namespace sdl {

/// One asserted instance from a commit's effect set, routed by the
/// WaitSet to the parked queries whose key specs it may enable. The tuple
/// is a copy — engines only build deltas while someone is listening
/// (WaitSet::incremental_listeners), so idle societies never pay for it.
struct DeltaEntry {
  IndexKey key;
  TupleId id;
  Tuple tuple;
};

/// Why a wakeup check fell back to (or never left) full re-evaluation.
enum class IncFallbackReason : std::uint8_t {
  Nonmonotone = 0,  // ForAll / negated groups / pure guard: no state made
  View = 1,         // view-scoped process: window admission, no state made
  NoDelta = 2,      // a matched publish carried no delta payload
  Batch = 3,        // delta grew past the recompute-cheaper threshold
  Capacity = 4,     // per-state or global byte cap hit (trim)
};
inline constexpr std::size_t kIncFallbackReasons = 5;

[[nodiscard]] const char* inc_fallback_name(IncFallbackReason r);

/// Dials for the incremental path. Off by default; even when enabled it
/// is forced off under deterministic sim, an armed fault injector, or an
/// armed history recorder — the checker keeps exercising the always-full
/// path — unless `force` overrides (the sim-sweep equivalence tests).
struct IncrementalOptions {
  bool enabled = false;
  /// Engage even under sim/faults/history. Test-only: the 64-seed sweep
  /// proving the incremental path preserves serializability needs it on
  /// inside deterministic runs.
  bool force = false;
  /// Delta entries per state past which recomputing is cheaper than
  /// seeding (OVN's fallback discipline): the state invalidates with
  /// reason `batch` and the next wakeup does a full probe.
  std::size_t max_delta_entries = 64;
  /// Per-state retained bytes cap (reason `capacity`).
  std::size_t max_state_bytes = 64 * 1024;
  /// Global retained bytes across every parked state; past it new
  /// deliveries trim (invalidate) their state instead of growing it —
  /// memory pressure degrades to full re-evaluation, never OOM.
  std::size_t max_total_bytes = 8 * 1024 * 1024;
};

/// Per-Runtime control block: the options plus exact (always-on) counters
/// the tests assert against and Runtime::register_gauges exposes. The
/// null-gated RuntimeMetrics counters mirror the hot-path ones.
class IncrementalControl {
 public:
  explicit IncrementalControl(IncrementalOptions options)
      : options_(options) {}

  [[nodiscard]] const IncrementalOptions& options() const { return options_; }

  void count_fallback(IncFallbackReason r) {
    fallbacks_[static_cast<std::size_t>(r)].fetch_add(
        1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fallbacks(IncFallbackReason r) const {
    return fallbacks_[static_cast<std::size_t>(r)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fallbacks_total() const {
    std::uint64_t total = 0;
    for (const auto& f : fallbacks_) total += f.load(std::memory_order_relaxed);
    return total;
  }

  /// Wakeup checks answered "still parked" with an empty delta — the
  /// zero-evaluation fast path, and the headline win on retract-heavy or
  /// unrelated-commit churn.
  std::atomic<std::uint64_t> checks_empty{0};
  /// Wakeup checks that ran a seeded enumeration.
  std::atomic<std::uint64_t> checks_seeded{0};
  /// Seeded checks that reported possibly-enabled (fell through to the
  /// full execute).
  std::atomic<std::uint64_t> wakes_confirmed{0};
  /// Total delta entries consumed by seeded checks.
  std::atomic<std::uint64_t> delta_entries_applied{0};
  /// States ever created / currently alive / currently retained bytes.
  std::atomic<std::uint64_t> states_created{0};
  std::atomic<std::int64_t> states_live{0};
  std::atomic<std::int64_t> state_bytes{0};

 private:
  const IncrementalOptions options_;
  std::atomic<std::uint64_t> fallbacks_[kIncFallbackReasons] = {};
};

/// The retained state of one parked delayed transaction: the query's
/// frozen per-pattern key specs and the pending relevant delta. Shared
/// between the WaitSet entry (deliveries from commit threads, under the
/// WaitSet mutex) and the owning Process (take() from the worker that
/// re-checks it); the internal mutex makes each side atomic.
class IncrementalState {
 public:
  /// `specs` are the query's pattern-aligned key specs computed with the
  /// park-time environment (locals cleared) — frozen while parked, same
  /// freeze as the WaitSet interest. `control` may be null (unit tests).
  IncrementalState(std::vector<KeySpec> specs, IncrementalControl* control);
  ~IncrementalState();
  IncrementalState(const IncrementalState&) = delete;
  IncrementalState& operator=(const IncrementalState&) = delete;

  /// Bucket-level relevance: could an assert into `key` participate in a
  /// match of a pattern with this spec?
  [[nodiscard]] static bool relevant(const KeySpec& spec, const IndexKey& key) {
    return spec.kind == KeySpec::Kind::Exact ? spec.key == key
                                             : spec.arity == key.arity;
  }

  /// Appends the spec-relevant entries of a published delta. Called by
  /// the WaitSet under its mutex. Overflow past the batch / byte caps
  /// invalidates the state instead of growing it.
  void deliver(const std::vector<DeltaEntry>& delta);

  /// Marks the state unusable until the next full evaluation re-arms it
  /// (a matched publish without a delta payload, or memory-pressure trim).
  void invalidate(IncFallbackReason reason);

  /// What take() hands the wakeup check: the swapped-out pending delta,
  /// or the invalidation verdict. Either way the state is re-armed —
  /// sound because the caller's follow-up evaluation (seeded or full)
  /// runs under engine locks that order it after every commit whose
  /// entries were swapped out, and later commits re-wake the process.
  struct Pending {
    std::vector<DeltaEntry> entries;
    bool invalid = false;
    IncFallbackReason reason = IncFallbackReason::NoDelta;
  };
  [[nodiscard]] Pending take();

  [[nodiscard]] const std::vector<KeySpec>& specs() const { return specs_; }

  // Introspection (tests / diagnostics).
  [[nodiscard]] std::size_t pending_entries() const;
  [[nodiscard]] std::size_t pending_bytes() const;
  [[nodiscard]] bool invalidated() const;

 private:
  /// Approximate retained footprint of one entry (strings undercounted —
  /// the caps bound growth, they are not an allocator).
  [[nodiscard]] static std::size_t entry_bytes(const DeltaEntry& e) {
    return sizeof(DeltaEntry) + e.tuple.arity() * sizeof(Value);
  }
  /// Drops pending entries and returns their bytes to the global budget.
  /// Caller holds mutex_.
  void drop_entries_locked();

  const std::vector<KeySpec> specs_;
  IncrementalControl* const control_;  // null in standalone unit tests

  mutable std::mutex mutex_;
  std::vector<DeltaEntry> pending_;
  std::size_t bytes_ = 0;
  bool invalid_ = false;
  IncFallbackReason reason_ = IncFallbackReason::NoDelta;
};

/// Builds the retained state for a parked delayed transaction, or null
/// when the query is outside the monotone fragment (ForAll, negated
/// groups, pure guard) — the caller counts the `nonmonotone` fallback.
/// Clears the query's locals in `env` (same freeze as interest_of).
[[nodiscard]] std::shared_ptr<IncrementalState> make_incremental_state(
    const Query& query, Env& env, const FunctionRegistry* fns,
    IncrementalControl* control);

}  // namespace sdl
