#include "query/vm.hpp"

#include <cmath>
#include <stdexcept>

namespace sdl::vm {

const char* trap_message(Trap t) {
  switch (t) {
    case Trap::None: return "sdl: no trap";
    case Trap::Unbound: return "sdl: read of unbound variable";
    case Trap::TypeError: return "sdl: type error in expression";
    case Trap::DivZero: return "sdl: division by zero";
    case Trap::Overflow: return "sdl: integer overflow in division";
    case Trap::NoRegistry: return "sdl: no function registry for call";
    case Trap::UnknownFn: return "sdl: unknown function";
    case Trap::HostError: return "sdl: host function rejected arguments";
  }
  return "sdl: bad trap";
}

namespace {

/// Integer exponent above which a**b cannot fit in int64 for any |base|>1
/// (2**63 already overflows), so the loop is pointless: go straight to
/// std::pow. Bounds the Pow loop at 62 iterations.
constexpr std::int64_t kPowIterCap = 62;

Trap pow_checked(const Value& a, const Value& b, Value& out) {
  if (!a.is_number() || !b.is_number()) return Trap::TypeError;
  if (a.is_int() && b.is_int() && b.as_int() >= 0) {
    const std::int64_t base = a.as_int();
    const std::int64_t exp = b.as_int();
    // |base| <= 1 closed forms: the old loop ran `exp` times even though
    // the answer is immediate — and `exp` is attacker-controlled.
    if (base == 0) { out = std::int64_t{exp == 0 ? 1 : 0}; return Trap::None; }
    if (base == 1) { out = std::int64_t{1}; return Trap::None; }
    if (base == -1) { out = std::int64_t{(exp & 1) != 0 ? -1 : 1}; return Trap::None; }
    if (exp <= kPowIterCap) {
      std::int64_t r = 1;
      bool wrapped = false;
      for (std::int64_t i = 0; i < exp && !wrapped; ++i) {
        wrapped = __builtin_mul_overflow(r, base, &r);
      }
      if (!wrapped) { out = r; return Trap::None; }
      // fall through: widen to double like the other overflowing ops
    }
  }
  out = std::pow(a.as_number(), b.as_number());
  return Trap::None;
}

}  // namespace

Trap arith_checked(Expr::Op op, const Value& a, const Value& b, Value& out) {
  const bool both_int = a.is_int() && b.is_int();
  switch (op) {
    case Expr::Op::Add:
      if (both_int) {
        std::int64_t r;
        if (!__builtin_add_overflow(a.as_int(), b.as_int(), &r)) {
          out = r;
          return Trap::None;
        }
      }
      if (!a.is_number() || !b.is_number()) return Trap::TypeError;
      out = a.as_number() + b.as_number();
      return Trap::None;
    case Expr::Op::Sub:
      if (both_int) {
        std::int64_t r;
        if (!__builtin_sub_overflow(a.as_int(), b.as_int(), &r)) {
          out = r;
          return Trap::None;
        }
      }
      if (!a.is_number() || !b.is_number()) return Trap::TypeError;
      out = a.as_number() - b.as_number();
      return Trap::None;
    case Expr::Op::Mul:
      if (both_int) {
        std::int64_t r;
        if (!__builtin_mul_overflow(a.as_int(), b.as_int(), &r)) {
          out = r;
          return Trap::None;
        }
      }
      if (!a.is_number() || !b.is_number()) return Trap::TypeError;
      out = a.as_number() * b.as_number();
      return Trap::None;
    case Expr::Op::Div:
      if (both_int) {
        if (b.as_int() == 0) return Trap::DivZero;
        // INT64_MIN / -1 is the one quotient int64 cannot hold; the x86
        // idiv raises #DE (SIGFPE) for it, exactly like divide-by-zero.
        if (a.as_int() == INT64_MIN && b.as_int() == -1) return Trap::Overflow;
        out = a.as_int() / b.as_int();
        return Trap::None;
      }
      if (!a.is_number() || !b.is_number()) return Trap::TypeError;
      out = a.as_number() / b.as_number();
      return Trap::None;
    case Expr::Op::Mod:
      if (!both_int) return Trap::TypeError;
      if (b.as_int() == 0) return Trap::DivZero;
      // INT64_MIN % -1 raises the same #DE as the division, despite the
      // mathematical remainder being 0 — reject it the same way.
      if (a.as_int() == INT64_MIN && b.as_int() == -1) return Trap::Overflow;
      out = a.as_int() % b.as_int();
      return Trap::None;
    case Expr::Op::Pow:
      return pow_checked(a, b, out);
    default:
      return Trap::TypeError;
  }
}

Trap compare_checked(Expr::Op op, const Value& a, const Value& b, bool& out) {
  if (op == Expr::Op::Eq || op == Expr::Op::Ne) {
    bool equal;
    if (a.is_number() && b.is_number()) {
      equal = a.as_number() == b.as_number();
    } else {
      equal = a == b;
    }
    out = op == Expr::Op::Eq ? equal : !equal;
    return Trap::None;
  }
  int c = 0;
  if (!Value::numeric_compare_opt(a, b, c)) return Trap::TypeError;
  switch (op) {
    case Expr::Op::Lt: out = c < 0; return Trap::None;
    case Expr::Op::Le: out = c <= 0; return Trap::None;
    case Expr::Op::Gt: out = c > 0; return Trap::None;
    case Expr::Op::Ge: out = c >= 0; return Trap::None;
    default: return Trap::TypeError;
  }
}

Trap negate_checked(const Value& a, Value& out) {
  if (a.is_int()) {
    std::int64_t r;
    if (!__builtin_sub_overflow(std::int64_t{0}, a.as_int(), &r)) {
      out = r;
      return Trap::None;
    }
    out = -static_cast<double>(a.as_int());  // -INT64_MIN widens
    return Trap::None;
  }
  if (!a.is_number()) return Trap::TypeError;
  out = -a.as_double();
  return Trap::None;
}

Trap truthy_checked(const Value& v, bool& out) {
  if (!v.is_bool()) return Trap::TypeError;
  out = v.as_bool();
  return Trap::None;
}

EvalResult run(const ExprProgram& prog, const Env& env,
               const FunctionRegistry* fns, std::span<Value> regs) {
  // Operand fetch: negative indices address the constant pool.
  const auto operand = [&](std::int32_t idx) -> const Value& {
    return idx >= 0 ? regs[static_cast<std::size_t>(idx)]
                    : prog.consts[static_cast<std::size_t>(-1 - idx)];
  };

  EvalResult result;
  std::size_t pc = 0;
  const std::size_t n = prog.code.size();
  while (pc < n) {
    const Instr& in = prog.code[pc];
    switch (in.op) {
      case Instr::Op::LoadVar: {
        if (in.a < 0 || static_cast<std::size_t>(in.a) >= env.size()) {
          result.trap = Trap::Unbound;
          return result;
        }
        const Value& v = env[static_cast<std::size_t>(in.a)];
        if (v.is_nil()) {
          result.trap = Trap::Unbound;
          return result;
        }
        regs[static_cast<std::size_t>(in.dst)] = v;
        break;
      }
      case Instr::Op::Move:
        regs[static_cast<std::size_t>(in.dst)] = operand(in.a);
        break;
      case Instr::Op::Neg: {
        Value out;
        if (const Trap t = negate_checked(operand(in.a), out); t != Trap::None) {
          result.trap = t;
          return result;
        }
        regs[static_cast<std::size_t>(in.dst)] = std::move(out);
        break;
      }
      case Instr::Op::Test: {
        bool b;
        if (const Trap t = truthy_checked(operand(in.a), b); t != Trap::None) {
          result.trap = t;
          return result;
        }
        regs[static_cast<std::size_t>(in.dst)] = b;
        break;
      }
      case Instr::Op::NotOp: {
        bool b;
        if (const Trap t = truthy_checked(operand(in.a), b); t != Trap::None) {
          result.trap = t;
          return result;
        }
        regs[static_cast<std::size_t>(in.dst)] = !b;
        break;
      }
      case Instr::Op::Add: case Instr::Op::Sub: case Instr::Op::Mul:
      case Instr::Op::Div: case Instr::Op::Mod: case Instr::Op::Pow: {
        static constexpr Expr::Op kMap[] = {Expr::Op::Add, Expr::Op::Sub,
                                            Expr::Op::Mul, Expr::Op::Div,
                                            Expr::Op::Mod, Expr::Op::Pow};
        const Expr::Op eop =
            kMap[static_cast<int>(in.op) - static_cast<int>(Instr::Op::Add)];
        Value out;
        if (const Trap t = arith_checked(eop, operand(in.a), operand(in.b), out);
            t != Trap::None) {
          result.trap = t;
          return result;
        }
        regs[static_cast<std::size_t>(in.dst)] = std::move(out);
        break;
      }
      case Instr::Op::Eq: case Instr::Op::Ne: case Instr::Op::Lt:
      case Instr::Op::Le: case Instr::Op::Gt: case Instr::Op::Ge: {
        static constexpr Expr::Op kMap[] = {Expr::Op::Eq, Expr::Op::Ne,
                                            Expr::Op::Lt, Expr::Op::Le,
                                            Expr::Op::Gt, Expr::Op::Ge};
        const Expr::Op eop =
            kMap[static_cast<int>(in.op) - static_cast<int>(Instr::Op::Eq)];
        bool out;
        if (const Trap t =
                compare_checked(eop, operand(in.a), operand(in.b), out);
            t != Trap::None) {
          result.trap = t;
          return result;
        }
        regs[static_cast<std::size_t>(in.dst)] = out;
        break;
      }
      case Instr::Op::JumpIfFalse:
        if (!regs[static_cast<std::size_t>(in.a)].as_bool()) {
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      case Instr::Op::JumpIfTrue:
        if (regs[static_cast<std::size_t>(in.a)].as_bool()) {
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      case Instr::Op::Call: {
        if (fns == nullptr) {
          result.trap = Trap::NoRegistry;
          return result;
        }
        const FunctionRegistry::Fn* fn =
            fns->lookup(prog.fn_names[static_cast<std::size_t>(in.fn)]);
        if (fn == nullptr) {
          result.trap = Trap::UnknownFn;
          return result;
        }
        const std::span<const Value> args =
            regs.subspan(static_cast<std::size_t>(in.a),
                         static_cast<std::size_t>(in.b));
        try {
          regs[static_cast<std::size_t>(in.dst)] = (*fn)(args);
        } catch (const std::invalid_argument&) {
          // Interpreter parity: a host function rejecting its arguments is
          // a guard-reject, not an abort. Anything else propagates.
          result.trap = Trap::HostError;
          return result;
        }
        break;
      }
      case Instr::Op::Return:
        result.value = operand(in.a);
        return result;
    }
    ++pc;
  }
  result.trap = Trap::TypeError;  // fell off the end: malformed program
  return result;
}

bool run_guard(const ExprProgram& prog, const Env& env,
               const FunctionRegistry* fns, std::span<Value> regs) {
  const EvalResult r = run(prog, env, fns, regs);
  if (r.trap != Trap::None) return false;
  bool b;
  return truthy_checked(r.value, b) == Trap::None && b;
}

}  // namespace sdl::vm
