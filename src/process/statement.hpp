// Flow-of-control constructs (§2.3): sequence, selection, repetition, and
// replication, over transactions.
//
//  * sequence    — statements execute one after another
//  * selection   — guarded sequences; at most one guard commits; fails
//                  (acts as skip) when no guard can succeed and none blocks
//  * repetition  — selection restarted after each completed branch; ends
//                  when the selection fails or a transaction issues `exit`
//  * replication — guarded sequences executed by an unbounded (in practice
//                  scheduler-bounded) number of concurrent copies; ends
//                  when no guard is enabled and all copies have finished
#pragma once

#include <memory>
#include <vector>

#include "txn/transaction.hpp"

namespace sdl {

class Statement;
/// Statement trees are immutable after resolve(); shared between all
/// instances of a process definition.
using StmtPtr = std::shared_ptr<Statement>;

/// One guarded sequence: a guarding transaction and the remainder of the
/// sequence (may be null for a guard-only branch, like Sum3's combining
/// transaction).
struct Branch {
  Transaction guard;
  StmtPtr body;
};

class Statement {
 public:
  enum class Kind { Txn, Sequence, Selection, Repetition, Replication };

  Kind kind = Kind::Sequence;
  Transaction txn;               // Kind::Txn
  std::vector<StmtPtr> children; // Kind::Sequence
  std::vector<Branch> branches;  // Selection / Repetition / Replication

  /// Resolves every transaction in the tree. Call exactly once.
  void resolve(SymbolTable& symtab);

  [[nodiscard]] std::string to_string(int indent = 0) const;
};

/// A single transaction statement.
StmtPtr stmt(Transaction txn);
/// Statements in order.
StmtPtr seq(std::vector<StmtPtr> children);
/// One-shot guarded selection: { g1 -> s1 | g2 -> s2 | ... }.
StmtPtr select(std::vector<Branch> branches);
/// Repetition: *{ ... } restarted until no guard fires or exit.
StmtPtr repeat(std::vector<Branch> branches);
/// Replication: ||{ ... } — concurrent copies (§2.3's '≈').
StmtPtr replicate(std::vector<Branch> branches);

/// Convenience: a branch from a guard transaction and trailing statements.
Branch branch(Transaction guard, std::vector<StmtPtr> rest = {});

}  // namespace sdl
