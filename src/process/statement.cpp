#include "process/statement.hpp"

namespace sdl {

void Statement::resolve(SymbolTable& symtab) {
  switch (kind) {
    case Kind::Txn:
      txn.resolve(symtab);
      break;
    case Kind::Sequence:
      for (const StmtPtr& c : children) c->resolve(symtab);
      break;
    case Kind::Selection:
    case Kind::Repetition:
    case Kind::Replication:
      for (Branch& b : branches) {
        b.guard.resolve(symtab);
        if (b.body) b.body->resolve(symtab);
      }
      break;
  }
}

// Grammar-exact rendering: the output of a Sequence joins statements with
// ';' exactly as the parser requires, so printed statements re-parse.
std::string Statement::to_string(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (kind) {
    case Kind::Txn:
      return pad + txn.to_string();
    case Kind::Sequence: {
      std::string out;
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ";\n";
        out += children[i]->to_string(indent);
      }
      return out;
    }
    case Kind::Selection:
    case Kind::Repetition:
    case Kind::Replication: {
      const char* open = kind == Kind::Selection    ? "{"
                         : kind == Kind::Repetition ? "*{"
                                                    : "||{";
      std::string out = pad + open + "\n";
      for (std::size_t i = 0; i < branches.size(); ++i) {
        if (i > 0) out += "\n" + pad + "|\n";
        out += pad + "  " + branches[i].guard.to_string();
        if (branches[i].body) {
          out += ";\n" + branches[i].body->to_string(indent + 1);
        }
      }
      out += "\n" + pad + "}";
      return out;
    }
  }
  return "";
}

StmtPtr stmt(Transaction txn) {
  auto s = std::make_shared<Statement>();
  s->kind = Statement::Kind::Txn;
  s->txn = std::move(txn);
  return s;
}

StmtPtr seq(std::vector<StmtPtr> children) {
  auto s = std::make_shared<Statement>();
  s->kind = Statement::Kind::Sequence;
  s->children = std::move(children);
  return s;
}

namespace {
StmtPtr branching(Statement::Kind kind, std::vector<Branch> branches) {
  auto s = std::make_shared<Statement>();
  s->kind = kind;
  s->branches = std::move(branches);
  return s;
}
}  // namespace

StmtPtr select(std::vector<Branch> branches) {
  return branching(Statement::Kind::Selection, std::move(branches));
}
StmtPtr repeat(std::vector<Branch> branches) {
  return branching(Statement::Kind::Repetition, std::move(branches));
}
StmtPtr replicate(std::vector<Branch> branches) {
  return branching(Statement::Kind::Replication, std::move(branches));
}

Branch branch(Transaction guard, std::vector<StmtPtr> rest) {
  Branch b;
  b.guard = std::move(guard);
  if (!rest.empty()) b.body = seq(std::move(rest));
  return b;
}

}  // namespace sdl
