#include "process/runtime.hpp"

#include <stdexcept>

#include "query/compile.hpp"
#include "repl/net_transport.hpp"

namespace sdl {

Runtime::Runtime(RuntimeOptions options)
    : options_(options),
      space_(options.shards),
      waits_(options.wake_policy),
      trace_(options.trace_capacity) {
  trace_.set_enabled(options.tracing);
  // Stamp the replication node id into the WAL segment headers this node
  // writes, so shipped segments carry their origin.
  if (options_.repl.enabled() && options_.persist.node_id == 0) {
    options_.persist.node_id = options_.repl.node_id;
  }
  if (options_.engine == EngineKind::GlobalLock) {
    engine_ = std::make_unique<GlobalLockEngine>(space_, waits_, &functions_);
  } else {
    engine_ = std::make_unique<ShardedEngine>(space_, waits_, &functions_);
  }
  scheduler_ = std::make_unique<Scheduler>(*engine_, options_.scheduler);
  consensus_ = std::make_unique<ConsensusManager>(*engine_, *scheduler_);
  scheduler_->set_consensus_manager(consensus_.get());
  if (options_.tracing) scheduler_->set_trace(&trace_);
  // Observability: instruments are always wired (the registry owns them),
  // but record only while obs::enabled() — components re-check the flag
  // once per operation, so the disabled cost is one pointer + one relaxed
  // load per hot-path crossing.
  engine_->set_metrics(&metrics_);
  scheduler_->set_metrics(&metrics_);
  consensus_->set_metrics(&metrics_);
  if (options_.overload.enabled()) {
    overload_ = std::make_unique<control::OverloadControl>(options_.overload);
    engine_->set_overload(overload_.get());
    waits_.set_overload(overload_.get());
    scheduler_->set_overload(overload_.get());
  }
  if (options_.incremental.enabled) {
    inc_ = std::make_unique<IncrementalControl>(options_.incremental);
    scheduler_->set_incremental(inc_.get());
  }
  register_gauges();
  if (options_.persist.enabled()) {
    // Mutating open: recovers the directory's committed state, then loads
    // it into the (still single-threaded) fresh dataspace before arming
    // the engine's WAL hook. Geometry mismatches throw here.
    persist_mgr_ = std::make_unique<persist::PersistManager>(
        options_.persist, static_cast<std::uint32_t>(options_.shards));
    persist::apply(space_, persist_mgr_->recovered());
    engine_->set_persist(persist_mgr_.get());
    persist_mgr_->set_metrics(&metrics_);
    if (overload_) persist_mgr_->set_overload(overload_.get());
  }
  if (options_.repl.enabled()) {
    if (options_.repl.role == repl::Role::Leader) {
      if (!persist_mgr_) {
        throw std::invalid_argument(
            "repl: a leader requires persist.dir — the WAL is the "
            "replication stream");
      }
      repl_leader_ =
          std::make_unique<repl::ReplLeader>(options_.repl, persist_mgr_.get());
    } else {
      // The follower's id->IndexKey shadow map is seeded with whatever its
      // own recovery restored (WAL retracts carry only ids), and the
      // leader-seq watermark with what the re-logged repl_mark records
      // prove durable — the reattach Hello resumes the stream there.
      static const std::vector<std::pair<TupleId, Tuple>> kEmpty;
      repl_follower_ = std::make_unique<repl::ReplFollower>(
          options_.repl, engine_.get(), persist_mgr_.get(),
          persist_mgr_ ? persist_mgr_->recovered().live : kEmpty,
          persist_mgr_ ? persist_mgr_->recovered().repl_applied_seq : 0);
      if (options_.repl.connect_port != 0) {
        auto t = repl::net_connect(options_.repl.connect_port,
                                   options_.repl.poll_interval_ms);
        if (t != nullptr) repl_follower_->attach(std::move(t));
      }
    }
    register_repl_gauges();
  }
}

void Runtime::register_gauges() {
  // Bridge the pre-existing stat pockets into the unified export as pull
  // gauges: sampled at render time, zero cost on the hot paths.
  metrics_registry_.gauge("sdl_tuples_resident",
                          [this] { return space_.size(); });
  metrics_registry_.gauge("sdl_tuples_asserted_total",
                          [this] { return space_.stats().asserts; });
  metrics_registry_.gauge("sdl_tuples_retracted_total",
                          [this] { return space_.stats().retracts; });
  metrics_registry_.gauge("sdl_txn_attempts_total",
                          [this] { return engine_->stats().attempts.load(); });
  metrics_registry_.gauge("sdl_txn_commits_total",
                          [this] { return engine_->stats().commits.load(); });
  metrics_registry_.gauge("sdl_txn_failures_total",
                          [this] { return engine_->stats().failures.load(); });
  metrics_registry_.gauge("sdl_wakes_delivered_total",
                          [this] { return waits_.wakes_delivered(); });
  metrics_registry_.gauge("sdl_processes_spawned_total",
                          [this] { return scheduler_->total_spawned(); });
  metrics_registry_.gauge("sdl_processes_completed_total",
                          [this] { return scheduler_->total_completed(); });
  metrics_registry_.gauge("sdl_consensus_sweeps_total",
                          [this] { return consensus_->sweeps(); });
  metrics_registry_.gauge("sdl_consensus_fires_total",
                          [this] { return consensus_->fires(); });
  // Compiled-query plan cache (src/query/compile.hpp). The counters are
  // process-global — every Query shares one stats block — so these gauges
  // cover all runtimes in the process; in the common one-runtime-per-
  // process deployment that distinction is invisible.
  metrics_registry_.gauge("sdl_plan_cache_hits_total", [] {
    return plan_cache_stats().hits.load(std::memory_order_relaxed);
  });
  metrics_registry_.gauge("sdl_plan_cache_misses_total", [] {
    return plan_cache_stats().misses.load(std::memory_order_relaxed);
  });
  metrics_registry_.gauge("sdl_plan_cache_compiles_total", [] {
    return plan_cache_stats().compiles.load(std::memory_order_relaxed);
  });
  metrics_registry_.gauge("sdl_plan_cache_invalidations_total", [] {
    return plan_cache_stats().invalidations.load(std::memory_order_relaxed);
  });
  metrics_registry_.gauge("sdl_plan_cache_bailouts_total", [] {
    return plan_cache_stats().bailouts.load(std::memory_order_relaxed);
  });
  if (overload_) {
    control::OverloadControl* const c = overload_.get();
    metrics_registry_.gauge("sdl_admission_inflight",
                            [c] { return c->inflight(); });
    metrics_registry_.gauge("sdl_admitted_total", [c] {
      return c->stats().admitted.load(std::memory_order_relaxed);
    });
    metrics_registry_.gauge("sdl_admission_shed_total", [c] {
      return c->stats().sheds.load(std::memory_order_relaxed);
    });
    metrics_registry_.gauge("sdl_retry_budget_tokens",
                            [c] { return c->retry_tokens(); });
    metrics_registry_.gauge("sdl_retry_spent_total", [c] {
      return c->stats().retry_spent.load(std::memory_order_relaxed);
    });
    metrics_registry_.gauge("sdl_retry_denied_total", [c] {
      return c->stats().retry_denied.load(std::memory_order_relaxed);
    });
    metrics_registry_.gauge(
        "sdl_breaker_state",
        [c] { return static_cast<std::uint64_t>(c->breaker_state()); });
    metrics_registry_.gauge("sdl_breaker_trips_total", [c] {
      return c->stats().breaker_trips.load(std::memory_order_relaxed);
    });
    metrics_registry_.gauge("sdl_wal_backpressure_waits_total", [c] {
      return c->stats().wal_waits.load(std::memory_order_relaxed);
    });
    metrics_registry_.gauge("sdl_park_saturated_total", [c] {
      return c->stats().park_saturated.load(std::memory_order_relaxed);
    });
    metrics_registry_.gauge("sdl_epoch_forced_drains_total", [c] {
      return c->stats().forced_drains.load(std::memory_order_relaxed);
    });
  }
  if (inc_) {
    IncrementalControl* const c = inc_.get();
    metrics_registry_.gauge("sdl_inc_state_bytes", [c] {
      const std::int64_t b = c->state_bytes.load(std::memory_order_relaxed);
      return static_cast<std::uint64_t>(b > 0 ? b : 0);
    });
    metrics_registry_.gauge("sdl_inc_states_live", [c] {
      const std::int64_t n = c->states_live.load(std::memory_order_relaxed);
      return static_cast<std::uint64_t>(n > 0 ? n : 0);
    });
    metrics_registry_.gauge("sdl_inc_checks_empty_total", [c] {
      return c->checks_empty.load(std::memory_order_relaxed);
    });
    metrics_registry_.gauge("sdl_inc_checks_seeded_total", [c] {
      return c->checks_seeded.load(std::memory_order_relaxed);
    });
    metrics_registry_.gauge("sdl_inc_wakes_confirmed_total", [c] {
      return c->wakes_confirmed.load(std::memory_order_relaxed);
    });
    metrics_registry_.gauge("sdl_inc_fallbacks_total",
                            [c] { return c->fallbacks_total(); });
  }
}

void Runtime::register_repl_gauges() {
  if (repl_leader_) {
    repl::ReplLeader* const l = repl_leader_.get();
    metrics_registry_.gauge("sdl_repl_lag_records",
                            [l] { return l->stats().lag_records; });
    metrics_registry_.gauge("sdl_repl_lag_bytes",
                            [l] { return l->stats().lag_bytes; });
    metrics_registry_.gauge("sdl_repl_batches_sent_total",
                            [l] { return l->stats().batches_sent; });
    metrics_registry_.gauge("sdl_repl_snapshots_sent_total",
                            [l] { return l->stats().snapshots_sent; });
    metrics_registry_.gauge("sdl_repl_sessions_started_total",
                            [l] { return l->stats().sessions_started; });
    metrics_registry_.gauge("sdl_repl_backpressure_total",
                            [l] { return l->stats().backpressure_hits; });
    if (overload_) {
      control::OverloadControl* const c = overload_.get();
      metrics_registry_.gauge("sdl_repl_write_sheds_total", [c] {
        return c->stats().repl_backpressure.load(std::memory_order_relaxed);
      });
    }
  }
  if (repl_follower_) {
    repl::ReplFollower* const f = repl_follower_.get();
    metrics_registry_.gauge("sdl_repl_applied_seq",
                            [f] { return f->applied_seq(); });
    metrics_registry_.gauge("sdl_repl_batches_applied_total",
                            [f] { return f->stats().batches_applied; });
    metrics_registry_.gauge("sdl_repl_snapshots_loaded_total",
                            [f] { return f->stats().snapshots_loaded; });
    metrics_registry_.gauge("sdl_repl_reconnects_total",
                            [f] { return f->stats().reconnects; });
    metrics_registry_.gauge("sdl_repl_promotions_total",
                            [f] { return f->stats().promotions; });
    metrics_registry_.gauge("sdl_repl_missing_retracts_total",
                            [f] { return f->stats().missing_retracts; });
  }
}

RunReport Runtime::run() {
  RunReport report = scheduler_->run();
  if (obs::enabled()) report.metrics = metrics_registry_.summary();
  return report;
}

FaultInjector& Runtime::enable_faults(std::uint64_t seed) {
  if (!faults_) {
    faults_ = std::make_unique<FaultInjector>(seed);
    engine_->set_fault_injector(faults_.get());
    waits_.set_fault_injector(faults_.get());
    scheduler_->set_fault_injector(faults_.get());
    consensus_->set_fault_injector(faults_.get());
    if (persist_mgr_) persist_mgr_->set_fault_injector(faults_.get());
    if (overload_) overload_->set_fault_injector(faults_.get());
    if (repl_leader_) repl_leader_->set_fault_injector(faults_.get());
    if (repl_follower_) repl_follower_->set_fault_injector(faults_.get());
  }
  return *faults_;
}

void Runtime::disable_faults() {
  if (!faults_) return;
  engine_->set_fault_injector(nullptr);
  waits_.set_fault_injector(nullptr);
  scheduler_->set_fault_injector(nullptr);
  consensus_->set_fault_injector(nullptr);
  if (persist_mgr_) persist_mgr_->set_fault_injector(nullptr);
  if (overload_) overload_->set_fault_injector(nullptr);
  if (repl_leader_) repl_leader_->set_fault_injector(nullptr);
  if (repl_follower_) repl_follower_->set_fault_injector(nullptr);
  faults_.reset();
}

HistoryRecorder& Runtime::enable_history() {
  if (!history_) history_ = std::make_unique<HistoryRecorder>();
  history_->reset(space_);
  history_->set_enabled(true);
  engine_->set_history(history_.get());
  return *history_;
}

void Runtime::disable_history() {
  if (!history_) return;
  engine_->set_history(nullptr);
  history_.reset();
}

CheckReport Runtime::check_history() const {
  if (!history_) return {};
  return check_serializability(*history_, space_);
}

TupleId Runtime::seed(Tuple t) {
  if (repl_follower_ && !repl_follower_->writable()) {
    throw std::logic_error(
        "repl: seed() on an unpromoted follower — replicas take state from "
        "the leader's stream only");
  }
  TupleId id;
  const IndexKey key = IndexKey::of(t);
  engine_->exclusive([&]() -> std::vector<IndexKey> {
    Tuple wal_copy;
    if (persist_mgr_) wal_copy = t;
    id = space_.insert(std::move(t), kEnvironmentProcess);
    // Seeds are commits too: without this record a recovered run would
    // silently lose its initial dataspace.
    if (persist_mgr_) {
      persist_mgr_->log_commit(kEnvironmentProcess, /*fire=*/0, {},
                               {{id, std::move(wal_copy)}});
    }
    return {key};
  });
  if (history_ && history_->enabled()) history_->record_seed(id);
  if (trace_.enabled()) trace_.record(TraceKind::SeedTuple, 0, "");
  // Seeds count toward the snapshot interval like any other commit, but
  // bypass the engine's post-commit hook — check here.
  if (persist_mgr_ && persist_mgr_->snapshot_due()) snapshot();
  return id;
}

bool Runtime::snapshot() {
  if (!persist_mgr_) return false;
  return persist_mgr_->snapshot_now(
      space_, [this](const std::function<void()>& fn) {
        engine_->exclusive([&]() -> std::vector<IndexKey> {
          fn();
          return {};
        });
      });
}

Runtime::Promotion Runtime::promote_to_leader() {
  Promotion out;
  if (!repl_follower_) return out;
  // Fence first: no replicated apply may land after the watermark we
  // return. Then start the new leader epoch on a fresh WAL segment so its
  // log is cleanly separated from the replicated prefix. The barrier can
  // fail (disk full, injected fault) — surface that instead of swallowing
  // it; the promotion itself still stands.
  out.fence = repl_follower_->promote();
  if (persist_mgr_) out.wal_rotated = snapshot();
  return out;
}

Runtime::Stats Runtime::stats() const {
  Stats s;
  s.tuples_resident = space_.size();
  s.tuples_asserted = space_.stats().asserts;
  s.tuples_retracted = space_.stats().retracts;
  s.txn_attempts = engine_->stats().attempts.load();
  s.txn_commits = engine_->stats().commits.load();
  s.txn_failures = engine_->stats().failures.load();
  s.wakes_delivered = waits_.wakes_delivered();
  s.processes_spawned = scheduler_->total_spawned();
  s.processes_completed = scheduler_->total_completed();
  s.consensus_sweeps = consensus_->sweeps();
  s.consensus_fires = consensus_->fires();
  return s;
}

std::string Runtime::Stats::to_string() const {
  std::string out;
  out += "tuples:     " + std::to_string(tuples_resident) + " resident, " +
         std::to_string(tuples_asserted) + " asserted, " +
         std::to_string(tuples_retracted) + " retracted\n";
  out += "txns:       " + std::to_string(txn_commits) + " committed / " +
         std::to_string(txn_attempts) + " attempts (" +
         std::to_string(txn_failures) + " failed)\n";
  out += "wakeups:    " + std::to_string(wakes_delivered) + "\n";
  out += "processes:  " + std::to_string(processes_completed) + " completed / " +
         std::to_string(processes_spawned) + " spawned\n";
  out += "consensus:  " + std::to_string(consensus_fires) + " fires, " +
         std::to_string(consensus_sweeps) + " detection sweeps\n";
  return out;
}

namespace {
/// Pairs every admitted execute() with exactly one release, on every exit
/// path (success, failure, exception from a host function).
struct AdmissionGuard {
  control::OverloadControl* ctl;
  ~AdmissionGuard() {
    if (ctl != nullptr) ctl->release();
  }
};
}  // namespace

TxnResult Runtime::execute(const Transaction& txn, Env& env, ProcessId owner) {
  // Replication gates, writes only — local reads always go through (on a
  // follower they are the eventually-consistent read path).
  if (!txn.is_read_only()) {
    if (repl_follower_ && !repl_follower_->writable()) {
      TxnResult refused;
      refused.not_leader = true;
      return refused;
    }
    if (repl_leader_ && repl_leader_->lag_exceeded()) {
      // Followers are past the byte-lag cap: shed the write instead of
      // letting them fall unboundedly behind (RetryAfter outcome).
      if (overload_) {
        overload_->stats().repl_backpressure.fetch_add(
            1, std::memory_order_relaxed);
      }
      TxnResult shed;
      shed.shed = true;
      shed.retry_after_us = options_.repl.poll_interval_ms * 1000;
      return shed;
    }
  }
  AdmissionGuard admitted{nullptr};
  if (overload_) {
    std::int64_t retry_after_us = 0;
    if (!overload_->try_admit(&retry_after_us)) {
      // RetryAfter outcome: nothing evaluated, nothing applied. The hint
      // scales with how far past the limit the gate is, so a storm of
      // rejected callers spreads out instead of hammering in lockstep.
      TxnResult shed;
      shed.shed = true;
      shed.retry_after_us = retry_after_us;
      return shed;
    }
    admitted.ctl = overload_.get();
  }
  TxnResult result = txn.type == TxnType::Delayed
                         ? execute_blocking(*engine_, txn, env, owner)
                         : engine_->execute(txn, env, owner);
  if (overload_ && result.success) overload_->deposit();
  if (!result.success) return result;
  // Apply the local action list (lets, spawns) the way the scheduler does
  // for society processes — the dataspace effects already committed.
  const bool exists = txn.query.quantifier == Quantifier::Exists;
  for (const QueryMatch& m : result.matches) {
    const Env& base = exists ? env : m.binding;
    for (const LetAction& let : txn.lets) {
      env[static_cast<std::size_t>(let.slot)] = let.value->eval(base, &functions_);
    }
    for (const SpawnAction& s : txn.spawns) {
      std::vector<Value> args;
      args.reserve(s.args.size());
      for (const ExprPtr& a : s.args) args.push_back(a->eval(base, &functions_));
      scheduler_->spawn(s.process_type, std::move(args));
    }
  }
  return result;
}

}  // namespace sdl
