#include "process/process.hpp"

#include <stdexcept>

namespace sdl {

void ProcessDef::finalize() {
  if (finalized_) throw std::logic_error("ProcessDef '" + name + "' finalized twice");
  param_slots_.reserve(params.size());
  for (const std::string& p : params) param_slots_.push_back(symtab_.intern(p));
  view.resolve(symtab_);
  if (body) body->resolve(symtab_);
  finalized_ = true;
}

Process::Process(ProcessId pid_, const ProcessDef& def_, std::vector<Value> args)
    : pid(pid_), def(def_) {
  if (!def.finalized()) {
    throw std::logic_error("Process spawned from unfinalized def '" + def.name + "'");
  }
  if (args.size() != def.params.size()) {
    throw std::invalid_argument("Process '" + def.name + "' expects " +
                                std::to_string(def.params.size()) + " args, got " +
                                std::to_string(args.size()));
  }
  env.resize(def.env_size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    env[static_cast<std::size_t>(def.param_slot(i))] = std::move(args[i]);
  }
  if (!def.view.import_all || !def.view.export_all) view.emplace(def.view);
  compute_static_imports();
  if (def.body) push_statement(*this, def.body.get());
}

void Process::compute_static_imports() {
  if (!view.has_value() || view->imports_everything()) {
    static_imports.everything = true;
    return;
  }
  // key_spec is evaluated with the parameter-only environment (lets have
  // not run yet) and no function registry: heads that cannot be pinned
  // fall back to arity-wide coverage — conservative by construction.
  for (const ViewEntry& entry : def.view.imports) {
    const KeySpec spec = entry.pattern.key_spec(env, nullptr);
    if (spec.kind == KeySpec::Kind::Exact) {
      static_imports.keys.push_back(spec.key);
    } else {
      static_imports.arities.push_back(spec.arity);
    }
  }
}

Process::Process(ProcessId pid_, const Process& parent,
                 std::shared_ptr<ReplicationGroup> group_)
    : pid(pid_), def(parent.def), env(parent.env), group(std::move(group_)) {
  if (!def.view.import_all || !def.view.export_all) view.emplace(def.view);
  static_imports = parent.static_imports;
  Frame f;
  f.type = Frame::Type::Sweep;
  f.stmt = group->stmt;
  frames.push_back(f);
}

std::string Process::label() const {
  return def.name + "#" + std::to_string(pid);
}

void push_statement(Process& p, const Statement* s) {
  Frame f;
  f.stmt = s;
  switch (s->kind) {
    case Statement::Kind::Txn: f.type = Frame::Type::Txn; break;
    case Statement::Kind::Sequence: f.type = Frame::Type::Seq; break;
    case Statement::Kind::Selection: f.type = Frame::Type::Select; break;
    case Statement::Kind::Repetition: f.type = Frame::Type::Repeat; break;
    case Statement::Kind::Replication: f.type = Frame::Type::Replicate; break;
  }
  p.frames.push_back(f);
}

}  // namespace sdl
