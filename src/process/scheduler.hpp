// The process-society scheduler: multiplexes logical SDL processes onto a
// fixed pool of worker threads and interprets their statement trees.
//
// Core mechanics:
//  * Each process is driven until it blocks, terminates, or exhausts its
//    step quantum (fairness).
//  * Delayed transactions subscribe to their read set before evaluating
//    (no lost wakeups), then park; commits wake exactly the interested
//    parked processes (WaitSet policy permitting).
//  * Consensus transactions park with registered offers; the
//    ConsensusManager claims, evaluates and commits entire consensus sets
//    (src/consensus).
//  * Replication spawns `replication_width` replicant tasks that sweep the
//    guards concurrently; the last replicant to fail every guard verifies
//    termination under total exclusion.
//
// Lock hierarchy (outer to inner): engine locks > society_mutex_ >
// Process::state_mutex > queue_mutex_. Wake callbacks from WaitSet run
// after the engine releases its locks.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "process/process.hpp"
#include "trace/trace.hpp"

namespace sdl {

class ConsensusManager;

struct SchedulerOptions {
  /// Worker threads. 0 = hardware_concurrency (min 2).
  std::size_t workers = 0;
  /// Transactions a process may run before yielding the worker.
  std::size_t quantum = 32;
  /// Replicant tasks per replication construct. 0 = worker count.
  std::size_t replication_width = 0;
};

/// What run() reports when the society goes quiescent.
struct RunReport {
  std::size_t completed = 0;       // processes terminated during this run
  std::size_t still_parked = 0;    // processes left blocked (deadlock?)
  std::vector<std::string> parked; // their labels + park reasons
  std::vector<std::string> errors; // processes killed by exceptions
  [[nodiscard]] bool deadlocked() const { return still_parked > 0; }
  [[nodiscard]] bool clean() const { return still_parked == 0 && errors.empty(); }
};

class Scheduler {
 public:
  Scheduler(Engine& engine, SchedulerOptions opts);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void set_consensus_manager(ConsensusManager* mgr) { consensus_ = mgr; }
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Registers a process definition (takes ownership; finalizes if the
  /// caller has not).
  const ProcessDef& define(ProcessDef def);
  [[nodiscard]] const ProcessDef* find_def(const std::string& name) const;

  /// Creates a process instance in Ready state. Thread-safe; may be called
  /// from action lists (dynamic creation, §2.4) or the host program.
  ProcessId spawn(const std::string& def_name, std::vector<Value> args);

  /// Runs until the society is quiescent: every process terminated or
  /// irrecoverably parked. Starts workers on entry, stops them on exit.
  RunReport run();

  /// Wake a parked process (used by WaitSet subscriptions and the
  /// consensus manager; harmless for non-parked pids).
  void wake(ProcessId pid);

  /// Executes `fn` with the society locked; `live` spans every process
  /// not yet erased. Used by the consensus manager inside the engine's
  /// exclusive section.
  void with_live(const std::function<void(const std::vector<Process*>&)>& fn);

  /// Queue a process already marked Ready (consensus manager resume path).
  void enqueue_ready(ProcessId pid);

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] std::size_t worker_count() const { return options_.workers; }
  [[nodiscard]] std::size_t live_count() const;
  [[nodiscard]] std::uint64_t total_spawned() const {
    return spawned_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Parked-with-consensus-offers count (the manager's trigger gate).
  [[nodiscard]] int consensus_waiters() const {
    return consensus_waiters_.load(std::memory_order_relaxed);
  }

 private:
  enum class StepOutcome { Continue, Yield, Parked, Done };

  // --- interpretation (worker-thread context, process owned) ---
  StepOutcome run_process(Process& p);
  StepOutcome do_transaction(Process& p, const Transaction& txn);
  StepOutcome do_selection(Process& p, Frame& f);
  StepOutcome do_replicate_parent(Process& p, Frame& f);
  StepOutcome do_sweep(Process& p, Frame& f);
  /// Applies lets/spawns; returns the control action.
  ControlAction apply_actions(Process& p, const Transaction& txn,
                              const TxnResult& result);
  /// Unwinds frames for `exit`; returns Done if the stack emptied.
  StepOutcome handle_exit(Process& p);
  StepOutcome handle_abort(Process& p);
  void ensure_subscription(Process& p, WaitSet::Interest interest);
  void drop_subscription(Process& p);
  TxnResult execute_engine(Process& p, const Transaction& txn);
  /// Guard sweep shared by Sweep frames: attempts every non-consensus
  /// guard once; returns the branch index or -1.
  int try_guards(Process& p, const std::vector<Branch>& branches,
                 TxnResult& result);

  // --- scheduling plumbing ---
  void worker_loop();
  Process* begin_running(ProcessId pid);
  /// Returns false when a pending wake converted the park into Ready (the
  /// caller then requeues instead).
  bool finalize_park(Process& p, ParkReason reason);
  void complete(Process& p);
  void requeue(ProcessId pid);
  void enqueue_new(ProcessId pid);
  void work_finished();  // decrement inflight, maybe declare quiescence
  void notify_consensus();
  void wake_group(ReplicationGroup& group, ProcessId except);
  ProcessId spawn_replicant(const Process& parent, ReplicationGroup* group);

  Engine& engine_;
  SchedulerOptions options_;
  ConsensusManager* consensus_ = nullptr;
  TraceRecorder* trace_ = nullptr;

  mutable std::mutex defs_mutex_;  // guards defs_
  std::unordered_map<std::string, std::unique_ptr<ProcessDef>> defs_;

  mutable std::mutex society_mutex_;  // guards society_ and next_pid_
  std::unordered_map<ProcessId, std::unique_ptr<Process>> society_;
  ProcessId next_pid_ = 1;

  std::mutex queue_mutex_;  // guards ready_, inflight_, stop_, running_
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<ProcessId> ready_;
  std::size_t inflight_ = 0;  // queued + being handled by a worker
  bool stop_ = false;
  bool running_ = false;  // run() in progress

  std::vector<std::jthread> workers_;
  std::mutex errors_mutex_;  // guards errors_
  std::vector<std::string> errors_;
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<int> consensus_waiters_{0};
};

}  // namespace sdl
