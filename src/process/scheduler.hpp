// The process-society scheduler: multiplexes logical SDL processes onto a
// fixed pool of worker threads and interprets their statement trees.
//
// Core mechanics:
//  * Each process is driven until it blocks, terminates, or exhausts its
//    step quantum (fairness).
//  * Delayed transactions subscribe to their read set before evaluating
//    (no lost wakeups), then park; commits wake exactly the interested
//    parked processes (WaitSet policy permitting).
//  * Consensus transactions park with registered offers; the
//    ConsensusManager claims, evaluates and commits entire consensus sets
//    (src/consensus).
//  * Replication spawns `replication_width` replicant tasks that sweep the
//    guards concurrently; the last replicant to fail every guard verifies
//    termination under total exclusion.
//
// Lock hierarchy (outer to inner): engine locks > society_mutex_ >
// Process::state_mutex > queue_mutex_. Wake callbacks from WaitSet run
// after the engine releases its locks.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "process/process.hpp"
#include "sim/decision.hpp"
#include "trace/trace.hpp"

namespace sdl {

class ConsensusManager;

struct SchedulerOptions {
  /// Worker threads. 0 = hardware_concurrency (min 2).
  std::size_t workers = 0;
  /// Transactions a process may run before yielding the worker.
  std::size_t quantum = 32;
  /// Replicant tasks per replication construct. 0 = worker count.
  std::size_t replication_width = 0;
  /// Default park deadline for delayed ('=>') transactions and blocking
  /// selections, in ms; 0 = never time out. A per-statement
  /// Transaction::timeout_ms overrides this.
  std::int64_t delayed_txn_timeout_ms = 0;
  /// Default park deadline for consensus offers, in ms; 0 = never.
  std::int64_t consensus_timeout_ms = 0;
  /// Watchdog scan granularity — deadlines expire within one tick.
  std::int64_t watchdog_tick_ms = 5;
  /// Retries of a fault-injected transient commit failure before the
  /// worker gives the process back to the queue (see FaultInjector).
  std::size_t commit_retry_limit = 8;
  /// Base backoff between those retries, in µs, doubled per attempt and
  /// jittered by the injector so contending retriers desynchronize.
  std::int64_t commit_backoff_us = 20;
  /// >= 0 switches run() to deterministic simulation mode: no worker
  /// threads, no watchdog — a single coordinator picks the next ready
  /// process from a SplitMix64 walk seeded here (or from an explicit
  /// DecisionSource) at every dispatch point, and park deadlines expire on
  /// a virtual clock that jumps to the earliest armed deadline whenever
  /// the ready queue drains. Same seed ⇒ bit-identical schedule and trace
  /// event sequence. Forces workers=1 and quantum=1 (every interpreter
  /// step is a separate decision point) and defaults replication_width to
  /// 4 instead of the machine's core count, so schedules replay across
  /// machines. -1 (default) = normal threaded execution.
  std::int64_t deterministic_seed = -1;
};

/// What run() reports when the society goes quiescent.
///
/// Parked processes are classified by what they wait for: a consensus
/// offer awaiting peers is a liveness *hand-off* (more spawns or a later
/// run may complete the consensus set), while a delayed transaction or
/// blocked selection waits on data no one is going to produce — the
/// classic deadlock shape. `parked` carries a wait-for explanation per
/// process: the blocking query, the index keys subscribed, and which live
/// processes could still export a matching tuple.
struct RunReport {
  std::size_t completed = 0;       // processes terminated during this run
  std::size_t still_parked = 0;    // processes left blocked
  std::vector<std::string> parked; // wait-for explanation per parked process
  std::vector<std::string> errors; // processes torn down by exceptions
  std::vector<std::string> timed_out; // park deadlines expired (diagnosed)
  std::vector<std::string> killed;    // kill()/fault-injected teardowns
  std::size_t parked_on_data = 0;        // delayed txn / selection guards
  std::size_t parked_on_consensus = 0;   // consensus offers awaiting peers
  std::size_t parked_on_replication = 0; // replication parent or sweeper
  /// Human-readable metrics digest (Runtime fills it when SDL_OBS is on;
  /// empty otherwise).
  std::string metrics;
  [[nodiscard]] bool deadlocked() const { return still_parked > 0; }
  /// Every parked process is a consensus offer awaiting peers — the run
  /// is incomplete but not data-deadlocked; spawning the missing peers
  /// (or a later run) can still fire the sets.
  [[nodiscard]] bool awaiting_consensus() const {
    return parked_on_consensus > 0 && parked_on_data == 0 &&
           parked_on_replication == 0;
  }
  [[nodiscard]] bool clean() const {
    return still_parked == 0 && errors.empty() && timed_out.empty() &&
           killed.empty();
  }
};

class Scheduler {
 public:
  Scheduler(Engine& engine, SchedulerOptions opts);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void set_consensus_manager(ConsensusManager* mgr) { consensus_ = mgr; }
  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  /// Arms the SchedulerDispatch injection point and the jittered backoff
  /// source for transient-commit retries (null disables).
  void set_fault_injector(FaultInjector* f) { faults_ = f; }

  /// Arms the overload-protection layer (null disables). The scheduler
  /// draws transient-commit retries from the shared retry budget (a dry
  /// budget ends the in-place retry loop early — the process yields back
  /// to the queue), converts parks into saturated WaitSet buckets into
  /// short-deadline parks the watchdog sheds, and runs the epoch-backlog
  /// watchdog check each tick. Set between runs, never during.
  void set_overload(control::OverloadControl* c) { overload_ = c; }

  /// Arms the park/wake observability instruments (null disables). The
  /// park paths additionally re-gate on the SDL_OBS runtime flag, once
  /// per park/dispatch. Set between runs, never during.
  void set_metrics(obs::RuntimeMetrics* m) { metrics_ = m; }

  /// Arms delta-driven wakeup evaluation for parked delayed transactions
  /// (null disables; src/query/incremental.hpp). Even when armed and
  /// enabled, the path stays off under deterministic sim, an armed fault
  /// injector, or an armed history recorder — the checker keeps
  /// exercising the always-full path — unless options().force overrides.
  /// Set between runs, never during.
  void set_incremental(IncrementalControl* c) { inc_ = c; }

  /// Deterministic mode only: overrides the seeded random walk with an
  /// explicit schedule chooser (the explorer's recording/replaying
  /// sources). Null reverts to the seed. Set between runs, never during.
  void set_decision_source(sim::DecisionSource* src) { decision_source_ = src; }
  [[nodiscard]] bool deterministic() const {
    return options_.deterministic_seed >= 0;
  }

  /// Registers a process definition (takes ownership; finalizes if the
  /// caller has not).
  const ProcessDef& define(ProcessDef def);
  [[nodiscard]] const ProcessDef* find_def(const std::string& name) const;

  /// Creates a process instance in Ready state. Thread-safe; may be called
  /// from action lists (dynamic creation, §2.4) or the host program.
  ProcessId spawn(const std::string& def_name, std::vector<Value> args);

  /// Runs until the society is quiescent: every process terminated or
  /// irrecoverably parked. Starts workers on entry, stops them on exit.
  RunReport run();

  /// Wake a parked process (used by WaitSet subscriptions and the
  /// consensus manager; harmless for non-parked pids).
  void wake(ProcessId pid);

  /// Requests crash-safe teardown of `pid`: its WaitSet subscription is
  /// unsubscribed, pending consensus offers are withdrawn (the claim
  /// aborts without wedging the rest of the consensus set), replication
  /// accounting is settled, and the process is released. Asynchronous —
  /// the teardown runs on the worker that next owns the process (a parked
  /// victim is woken for it; during quiescence kill() may be issued
  /// before run() and takes effect as the run starts). The teardown is
  /// recorded in RunReport::killed. Returns false for an unknown pid.
  bool kill(ProcessId pid);

  /// Executes `fn` with the society locked; `live` spans every process
  /// not yet erased. Used by the consensus manager inside the engine's
  /// exclusive section.
  void with_live(const std::function<void(const std::vector<Process*>&)>& fn);

  /// Queue a process already marked Ready (consensus manager resume path).
  void enqueue_ready(ProcessId pid);

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] std::size_t worker_count() const { return options_.workers; }
  [[nodiscard]] std::size_t live_count() const;
  [[nodiscard]] std::uint64_t total_spawned() const {
    return spawned_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Parked-with-consensus-offers count (the manager's trigger gate).
  [[nodiscard]] int consensus_waiters() const {
    return consensus_waiters_.load(std::memory_order_relaxed);
  }

  /// Processes torn down by kill()/fault injection, and by park-deadline
  /// expiry, across the scheduler's lifetime (operator counters).
  [[nodiscard]] std::uint64_t total_killed() const {
    return killed_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_timed_out() const {
    return timeouts_total_.load(std::memory_order_relaxed);
  }
  /// Retries of injected transient commit failures (E16 instrumentation).
  [[nodiscard]] std::uint64_t commit_retries() const {
    return commit_retries_.load(std::memory_order_relaxed);
  }

 private:
  enum class StepOutcome { Continue, Yield, Parked, Done };
  /// Why a process is leaving the society (one teardown path for all).
  enum class RetireKind { Completed, Errored, Killed, TimedOut };

  // --- interpretation (worker-thread context, process owned) ---
  StepOutcome run_process(Process& p);
  StepOutcome do_transaction(Process& p, const Transaction& txn);
  StepOutcome do_selection(Process& p, Frame& f);
  StepOutcome do_replicate_parent(Process& p, Frame& f);
  StepOutcome do_sweep(Process& p, Frame& f);
  /// Applies lets/spawns; returns the control action.
  ControlAction apply_actions(Process& p, const Transaction& txn,
                              const TxnResult& result);
  /// Unwinds frames for `exit`; returns Done if the stack emptied.
  StepOutcome handle_exit(Process& p);
  StepOutcome handle_abort(Process& p);
  /// `txn` non-null marks a delayed-transaction park eligible for
  /// incremental wakeup state (consensus/selection parks pass null).
  void ensure_subscription(Process& p, WaitSet::Interest interest,
                           const Transaction* txn = nullptr);
  void drop_subscription(Process& p);

  // --- incremental wakeup evaluation (delta-driven recheck) ---
  /// What the retained delta said about a parked process's wakeup.
  enum class IncDecision {
    None,          // no state / feature inactive: take the full path
    StillParked,   // provably still unsatisfiable — skip evaluation
    MaybeEnabled,  // seeded check found a witness — go straight to execute
    Fallback,      // state invalidated: full path, fallback counted
  };
  /// Consumes the pending delta of `p`'s retained state and classifies
  /// the wakeup. Worker context, no engine locks held.
  IncDecision incremental_recheck(Process& p, const Transaction& txn);
  /// The gating matrix: enabled AND (force OR no sim/faults/history).
  [[nodiscard]] bool incremental_active() const;
  /// Bumps the exact control counter and its null-gated metrics mirror.
  void count_inc_fallback(IncFallbackReason r);
  TxnResult execute_engine(Process& p, const Transaction& txn);
  /// Guard sweep shared by Sweep frames: attempts every non-consensus
  /// guard once; returns the branch index or -1. `saw_injected` is set
  /// when a guard failed only because of an injected transient commit
  /// fault (the sweep must retry, not count itself parked).
  int try_guards(Process& p, const std::vector<Branch>& branches,
                 TxnResult& result, bool& saw_injected);

  // --- scheduling plumbing ---
  void worker_loop();
  /// One full dispatch of `pid`: teardown checks, fault injection, a
  /// quantum of interpretation, and the outcome transition. The body of
  /// worker_loop's iteration, shared with the deterministic coordinator.
  void dispatch_one(ProcessId pid);
  /// The deterministic-mode run(): single-threaded coordinator loop.
  RunReport run_deterministic();
  /// Report assembly shared by run() and run_deterministic(); call only
  /// when no worker owns a process (states stable).
  RunReport build_report(std::uint64_t completed_before);
  /// Deterministic mode: advance the virtual clock to the earliest armed
  /// park deadline and expire it. Returns false when nothing was armed.
  bool det_advance_clock();
  /// steady_clock::now(), or the virtual clock in deterministic mode.
  [[nodiscard]] std::chrono::steady_clock::time_point park_clock_now() const;
  /// Deterministic mode: fold a transaction's bucket footprint into the
  /// step the DecisionSource will observe. No-op while not recording.
  void sim_note_txn(const Transaction& txn, Env& env);
  Process* begin_running(ProcessId pid);
  /// Returns false when a pending wake converted the park into Ready (the
  /// caller then requeues instead).
  bool finalize_park(Process& p, ParkReason reason);
  /// The single teardown path: unsubscribes the WaitSet entry, withdraws
  /// consensus offers under the state lock, settles replication-group
  /// accounting, erases the process, and records the outcome under `kind`.
  /// Caller must own the process (worker context) or hold exclusive
  /// access (pre-run kill drain).
  void retire(Process& p, RetireKind kind, std::string note);
  void complete(Process& p) { retire(p, RetireKind::Completed, {}); }
  void requeue(ProcessId pid);
  void enqueue_new(ProcessId pid);
  void work_finished();  // decrement inflight, maybe declare quiescence
  void notify_consensus();
  void wake_group(ReplicationGroup& group, ProcessId except);
  ProcessId spawn_replicant(const Process& parent,
                            const std::shared_ptr<ReplicationGroup>& group);
  /// SpuriousWake injection helper: wakes one parked process (any one),
  /// chosen by `salt` so the victim varies deterministically.
  void wake_one_parked(std::uint64_t salt);

  // --- deadlines ---
  /// Watchdog body: scans for expired park deadlines every tick while any
  /// are armed; expired parkers are woken with `timed_out` set.
  void watchdog_loop(const std::stop_token& st);
  /// One scan; wakes every parked process whose deadline passed `now`
  /// (wall time from the watchdog, virtual time in deterministic mode).
  void expire_deadlines(std::chrono::steady_clock::time_point now);

  // --- diagnosis ---
  /// Wait-for explanation for a parked process: the blocking query, the
  /// subscribed index keys, and which live processes could export a
  /// matching tuple. Caller holds society_mutex_.
  [[nodiscard]] std::string explain_park_locked(const Process& p) const;
  /// Same, acquiring society_mutex_ (worker context, no locks held).
  [[nodiscard]] std::string explain_park(const Process& p);

  /// The armed instrument set when observability is wired AND enabled,
  /// else null (the per-operation gate, same shape as Engine's).
  [[nodiscard]] obs::RuntimeMetrics* obs_metrics() const {
    return (metrics_ != nullptr && obs::enabled()) ? metrics_ : nullptr;
  }
  /// Park-duration histogram for `reason`, from the armed set `m`.
  static obs::LatencyHistogram* park_histogram(obs::RuntimeMetrics* m,
                                               ParkReason reason);

  Engine& engine_;
  SchedulerOptions options_;
  ConsensusManager* consensus_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  FaultInjector* faults_ = nullptr;
  control::OverloadControl* overload_ = nullptr;
  obs::RuntimeMetrics* metrics_ = nullptr;
  IncrementalControl* inc_ = nullptr;

  mutable std::mutex defs_mutex_;  // guards defs_
  std::unordered_map<std::string, std::unique_ptr<ProcessDef>> defs_;

  mutable std::mutex society_mutex_;  // guards society_ and next_pid_
  std::unordered_map<ProcessId, std::unique_ptr<Process>> society_;
  ProcessId next_pid_ = 1;

  std::mutex queue_mutex_;  // guards ready_, inflight_, stop_, running_
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<ProcessId> ready_;
  std::size_t inflight_ = 0;  // queued + being handled by a worker
  bool stop_ = false;
  bool running_ = false;  // run() in progress

  std::vector<std::jthread> workers_;
  std::mutex report_mutex_;  // guards errors_, timed_out_, killed_
  std::vector<std::string> errors_;
  std::vector<std::string> timed_out_;
  std::vector<std::string> killed_;
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> killed_total_{0};
  std::atomic<std::uint64_t> timeouts_total_{0};
  std::atomic<std::uint64_t> commit_retries_{0};
  std::atomic<int> consensus_waiters_{0};

  // Watchdog: runs only during run(), only scans while deadlines are
  // armed. deadlines_armed_ counts parked processes with a deadline; the
  // quiescence check treats an armed deadline as pending work, so run()
  // cannot report "parked forever" about a process about to time out.
  std::jthread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable_any watchdog_cv_;
  std::atomic<int> deadlines_armed_{0};

  // Deterministic mode. The virtual clock starts at the epoch and only
  // moves forward when the coordinator has nothing runnable; the step
  // under construction is coordinator-thread-only state.
  sim::DecisionSource* decision_source_ = nullptr;
  std::chrono::steady_clock::time_point det_now_{};
  sim::SimStep sim_step_;
  bool sim_recording_ = false;
};

}  // namespace sdl
