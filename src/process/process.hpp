// Process definitions and process instances (§2.4).
//
// "SDL supports the definition of parameterized process types ... processes
//  may be created dynamically ... Process termination occurs when the last
//  statement is executed or upon execution of the abort action."
//
// A Process here is a *logical* process: its execution state is an explicit
// frame stack interpreted by scheduler workers, so a parked process costs a
// few hundred bytes, not an OS thread — this is what lets a society reach
// the paper's "many thousands of concurrent processes" (experiment E11).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "process/statement.hpp"
#include "txn/engine.hpp"

namespace sdl {

/// A parameterized process type. Build the body with the statement
/// factories, then finalize() once; definitions are immutable afterwards
/// and shared by all instances.
class ProcessDef {
 public:
  std::string name;
  std::vector<std::string> params;
  ViewSpec view;
  StmtPtr body;

  /// Resolves the body and view against a fresh symbol table; params take
  /// the first slots. Call exactly once, before registering with a Runtime.
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] const SymbolTable& symbols() const { return symtab_; }
  [[nodiscard]] int param_slot(std::size_t i) const { return param_slots_[i]; }
  [[nodiscard]] std::size_t env_size() const {
    return static_cast<std::size_t>(symtab_.size());
  }

 private:
  SymbolTable symtab_;
  std::vector<int> param_slots_;
  bool finalized_ = false;
};

/// Scheduling state of a logical process. Transitions are guarded by the
/// process's own mutex (state_mutex_):
///   Ready --(worker pops)--> Running
///   Running --(blocks)-->    Parked        --(wake)--> Ready
///   Parked --(consensus manager)--> Claimed --(fire)--> Ready
///                                           --(revoke)--> Parked
///   Running/any --(final statement or abort)--> Done
enum class RunState { Ready, Running, Parked, Claimed, Done };

/// Why a parked process is parked (diagnostics / deadlock reports).
enum class ParkReason { None, DelayedTxn, Selection, Consensus, Replication };

/// One consensus offer: a consensus-tagged transaction this process is
/// ready to commit as part of an n-way consensus (§2.2). `branch` is the
/// selection branch index it corresponds to (-1 for a standalone
/// transaction statement).
struct ConsensusOffer {
  const Transaction* txn = nullptr;
  int branch = -1;
};

/// Result delivered to a process by the consensus manager when its offer
/// fired: which offer, and the committed transaction's matches.
struct ConsensusResult {
  int branch = -1;
  TxnResult result;
};

/// A bucket-level over-approximation of a process's import set, frozen at
/// spawn time (it depends only on parameters, which never change). The
/// consensus manager uses it for processes that are currently runnable —
/// their environments cannot be read safely, but the summary can, and an
/// over-approximation only delays consensus, never fires it wrongly.
struct ImportSummary {
  bool everything = false;
  std::vector<IndexKey> keys;
  std::vector<std::uint32_t> arities;

  /// Could a tuple in bucket `key` be in the import set?
  [[nodiscard]] bool may_cover(const IndexKey& key) const {
    if (everything) return true;
    for (const IndexKey& k : keys) {
      if (k == key) return true;
    }
    for (std::uint32_t a : arities) {
      if (a == key.arity) return true;
    }
    return false;
  }
};

class Process;

/// Shared coordination state of one replication construct (§2.3). The
/// parent parks; `width` replicant processes sweep the guards; the group
/// is done when no guard is enabled and every replicant is parked (the
/// last parker verifies under total exclusion).
struct ReplicationGroup {
  const Statement* stmt = nullptr;
  ProcessId parent = 0;
  /// Members the termination check must account for. Atomic because a
  /// replicant torn down abnormally (killed / crashed) is subtracted —
  /// the dead member can never park, so leaving it counted would wedge
  /// the construct's "every member parked" check forever.
  std::atomic<int> width{0};
  std::atomic<int> active{0};   // replicants not yet Done
  std::atomic<int> parked{0};   // replicants parked in guard-sweep failure
  std::atomic<bool> done{false};
  std::atomic<bool> abort{false};
  std::vector<ProcessId> members;  // fixed at creation; replicant pids
};

/// One interpreter frame.
struct Frame {
  enum class Type {
    Seq,        // executing stmt->children, pc = next child
    Txn,        // executing a single transaction statement
    Select,     // selection: choosing a branch
    Repeat,     // repetition: pc 0 = selecting, 1 = running branch body
    BranchBody, // running the body of a chosen branch (stmt = body seq)
    Replicate,  // parent side of a replication (parked until group done)
    Sweep,      // replicant side: sweep guards of stmt (a Replication)
  };
  Type type = Type::Seq;
  const Statement* stmt = nullptr;
  std::size_t pc = 0;
};

/// A logical process instance. Owned by the Society; touched by scheduler
/// workers (one at a time — the state machine guarantees single ownership
/// while Running) and by the wake/consensus paths under state_mutex_.
class Process {
 public:
  Process(ProcessId pid, const ProcessDef& def, std::vector<Value> args);

  /// Replicant constructor: clones `parent`'s environment. The group is
  /// held by shared_ptr so it outlives a parent torn down early (killed or
  /// crashed) — replicants never observe a dangling group.
  Process(ProcessId pid, const Process& parent,
          std::shared_ptr<ReplicationGroup> group);

  const ProcessId pid;
  const ProcessDef& def;

  // --- interpreter state: owned by the worker while Running ---
  Env env;
  std::vector<Frame> frames;
  std::optional<View> view;           // engaged when def.view is non-trivial
  std::shared_ptr<ReplicationGroup> group;        // non-null for replicants
  std::shared_ptr<ReplicationGroup> owned_group;  // parent's group
  WaitSet::Ticket ticket = WaitSet::kInvalidTicket;  // live subscription
  /// Copy of the live subscription's interest — what the WaitSet would
  /// have to publish to wake this process. Kept for deadlock diagnosis
  /// (the wait-for report matches it against other processes' write sets).
  WaitSet::Interest interest;
  /// Retained incremental-wakeup state for the parked delayed transaction
  /// (src/query/incremental.hpp), shared with the WaitSet entry so either
  /// side releasing last frees it. Null when the feature is off, the query
  /// is outside the monotone fragment, or the process is view-scoped.
  /// Lifetime tracks the subscription: set by ensure_subscription, reset
  /// by drop_subscription (and so by every retire path).
  std::shared_ptr<IncrementalState> inc_state;
  std::uint64_t txns_committed = 0;
  /// This replicant is counted in group->parked (exactly-once accounting;
  /// set before parking, cleared when the scheduler resumes it).
  bool counted_parked = false;
  /// This process is counted in the scheduler's consensus-waiter gate.
  bool counted_waiter = false;
  /// Frozen bucket-level import over-approximation (see ImportSummary).
  ImportSummary static_imports;
  /// Deadline the interpreter stages for the park it is about to enter:
  /// 0 = scheduler default for the park reason, < 0 = never, > 0 = that
  /// many ms. Consumed (and reset) by finalize_park.
  std::int64_t park_timeout_ms = 0;
  /// The live subscription landed in a WaitSet bucket past the overload
  /// layer's park cap: finalize_park forces a short deadline so the
  /// watchdog sheds this park instead of letting the bucket queue grow.
  /// Set by ensure_subscription, cleared with the subscription.
  bool park_saturated = false;

  // --- teardown flags: set by kill()/watchdog, consumed by the worker
  //     that owns the process next (atomic so the interpreter can poll
  //     them promptly without taking state_mutex) ---
  std::atomic<bool> pending_kill{false};
  std::atomic<bool> timed_out{false};
  /// Wait-for diagnosis built by the watchdog at expiry time (while the
  /// park state is still intact); consumed by the retiring worker.
  std::string timeout_note;

  // --- scheduling state: guarded by state_mutex_ ---
  std::mutex state_mutex;
  RunState state = RunState::Ready;
  bool pending_wake = false;
  ParkReason park_reason = ParkReason::None;
  std::vector<ConsensusOffer> offers;            // valid while Parked/Claimed
  std::optional<ConsensusResult> consensus_result;
  /// Armed park deadline (the watchdog expires it). Valid while Parked.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  // --- observability stamps (guarded by state_mutex; written only while
  //     the SDL_OBS instruments are armed, 0 = unstamped) ---
  /// When finalize_park made the park effective, obs::now_ns().
  std::uint64_t park_started_ns = 0;
  /// When a wake / deadline expiry made the process Ready again. Left 0
  /// by consensus resumes (they go Claimed → Ready, not through wake()).
  std::uint64_t woke_at_ns = 0;
  /// Stable copy of park_reason for begin_running's metrics read —
  /// wake() resets park_reason to None before the redispatch.
  ParkReason obs_park_reason = ParkReason::None;

  [[nodiscard]] const View* view_ptr() const {
    return view.has_value() ? &*view : nullptr;
  }

  /// Human-readable "Name#pid" label.
  [[nodiscard]] std::string label() const;

 private:
  void compute_static_imports();
};

/// Pushes onto `p.frames` the frame type appropriate to `s`'s kind.
void push_statement(Process& p, const Statement* s);

}  // namespace sdl
