#include "process/scheduler.hpp"

#include <cassert>
#include <stdexcept>

#include "consensus/consensus.hpp"

namespace sdl {

namespace {

const char* park_reason_name(ParkReason r) {
  switch (r) {
    case ParkReason::None: return "none";
    case ParkReason::DelayedTxn: return "delayed-transaction";
    case ParkReason::Selection: return "selection";
    case ParkReason::Consensus: return "consensus";
    case ParkReason::Replication: return "replication";
  }
  return "?";
}

}  // namespace

Scheduler::Scheduler(Engine& engine, SchedulerOptions opts)
    : engine_(engine), options_(opts) {
  if (options_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.workers = hw >= 2 ? hw : 2;
  }
  if (options_.quantum == 0) options_.quantum = 1;
  if (options_.replication_width == 0) {
    options_.replication_width = options_.workers;
  }
}

Scheduler::~Scheduler() {
  {
    std::scoped_lock lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  workers_.clear();
}

const ProcessDef& Scheduler::define(ProcessDef def) {
  if (!def.finalized()) def.finalize();
  auto owned = std::make_unique<ProcessDef>(std::move(def));
  // Copy the key: emplace may consume `owned` even when insertion fails
  // (the node can be built before the duplicate is discovered).
  const std::string name = owned->name;
  std::scoped_lock lock(defs_mutex_);
  auto [it, inserted] = defs_.emplace(name, std::move(owned));
  if (!inserted) {
    throw std::invalid_argument("Scheduler: duplicate process definition '" +
                                name + "'");
  }
  return *it->second;
}

const ProcessDef* Scheduler::find_def(const std::string& name) const {
  std::scoped_lock lock(defs_mutex_);
  auto it = defs_.find(name);
  return it == defs_.end() ? nullptr : it->second.get();
}

ProcessId Scheduler::spawn(const std::string& def_name, std::vector<Value> args) {
  const ProcessDef* def = find_def(def_name);
  if (def == nullptr) {
    throw std::invalid_argument("Scheduler: unknown process type '" + def_name + "'");
  }
  ProcessId pid;
  {
    std::scoped_lock lock(society_mutex_);
    pid = next_pid_++;
    society_.emplace(pid, std::make_unique<Process>(pid, *def, std::move(args)));
  }
  spawned_.fetch_add(1, std::memory_order_relaxed);
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->record(TraceKind::Spawn, pid, def_name);
  }
  enqueue_new(pid);
  return pid;
}

ProcessId Scheduler::spawn_replicant(const Process& parent,
                                     ReplicationGroup* group) {
  ProcessId pid;
  {
    std::scoped_lock lock(society_mutex_);
    pid = next_pid_++;
    society_.emplace(pid, std::make_unique<Process>(pid, parent, group));
  }
  spawned_.fetch_add(1, std::memory_order_relaxed);
  return pid;
}

void Scheduler::with_live(
    const std::function<void(const std::vector<Process*>&)>& fn) {
  std::scoped_lock lock(society_mutex_);
  std::vector<Process*> live;
  live.reserve(society_.size());
  for (auto& [pid, p] : society_) live.push_back(p.get());
  fn(live);
}

std::size_t Scheduler::live_count() const {
  std::scoped_lock lock(society_mutex_);
  return society_.size();
}

void Scheduler::enqueue_new(ProcessId pid) {
  {
    std::scoped_lock lock(queue_mutex_);
    ready_.push_back(pid);
    ++inflight_;
  }
  queue_cv_.notify_one();
}

void Scheduler::enqueue_ready(ProcessId pid) { enqueue_new(pid); }

void Scheduler::requeue(ProcessId pid) {
  {
    std::scoped_lock lock(queue_mutex_);
    ready_.push_back(pid);  // still counted in inflight_
  }
  queue_cv_.notify_one();
}

void Scheduler::wake(ProcessId pid) {
  std::scoped_lock society_lock(society_mutex_);
  auto it = society_.find(pid);
  if (it == society_.end()) return;
  Process& p = *it->second;
  bool enqueue = false;
  {
    std::scoped_lock state_lock(p.state_mutex);
    switch (p.state) {
      case RunState::Parked:
        p.state = RunState::Ready;
        p.park_reason = ParkReason::None;
        enqueue = true;
        break;
      case RunState::Running:
      case RunState::Claimed:
        p.pending_wake = true;
        break;
      case RunState::Ready:
      case RunState::Done:
        break;
    }
  }
  if (enqueue) {
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->record(TraceKind::Wake, pid, p.def.name);
    }
    enqueue_new(pid);
  }
}

Process* Scheduler::begin_running(ProcessId pid) {
  std::scoped_lock society_lock(society_mutex_);
  auto it = society_.find(pid);
  if (it == society_.end()) return nullptr;
  Process& p = *it->second;
  {
    std::scoped_lock state_lock(p.state_mutex);
    assert(p.state == RunState::Ready);
    p.state = RunState::Running;
    p.pending_wake = false;
    p.park_reason = ParkReason::None;
    if (p.counted_waiter) {
      consensus_waiters_.fetch_sub(1, std::memory_order_relaxed);
      p.counted_waiter = false;
    }
    p.offers.clear();
  }
  if (p.counted_parked && p.group != nullptr) {
    p.group->parked.fetch_sub(1, std::memory_order_acq_rel);
    p.counted_parked = false;
  }
  return &p;
}

bool Scheduler::finalize_park(Process& p, ParkReason reason) {
  std::scoped_lock state_lock(p.state_mutex);
  if (p.pending_wake) {
    p.pending_wake = false;
    p.state = RunState::Ready;
    return false;  // caller requeues
  }
  p.state = RunState::Parked;
  p.park_reason = reason;
  if (!p.offers.empty()) {
    consensus_waiters_.fetch_add(1, std::memory_order_relaxed);
    p.counted_waiter = true;
  }
  return true;
}

void Scheduler::complete(Process& p) {
  drop_subscription(p);
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->record(TraceKind::Terminate, p.pid, p.def.name);
  }
  {
    std::scoped_lock state_lock(p.state_mutex);
    p.state = RunState::Done;
    if (p.counted_waiter) {
      consensus_waiters_.fetch_sub(1, std::memory_order_relaxed);
      p.counted_waiter = false;
    }
  }
  ReplicationGroup* group = p.group;
  const ProcessId pid = p.pid;
  if (p.counted_parked && group != nullptr) {
    group->parked.fetch_sub(1, std::memory_order_acq_rel);
    p.counted_parked = false;
  }
  ProcessId wake_parent = 0;
  if (group != nullptr &&
      group->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    wake_parent = group->parent;
  }
  {
    std::scoped_lock society_lock(society_mutex_);
    society_.erase(pid);
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (wake_parent != 0) wake(wake_parent);
  notify_consensus();  // membership changed
}

void Scheduler::notify_consensus() {
  if (consensus_ != nullptr &&
      consensus_waiters_.load(std::memory_order_relaxed) > 0) {
    consensus_->notify();
  }
}

void Scheduler::work_finished() {
  bool idle;
  {
    std::scoped_lock lock(queue_mutex_);
    --inflight_;
    idle = inflight_ == 0;
  }
  if (idle) {
    // A parked consensus set may be fireable now that nothing is running.
    notify_consensus();
    std::scoped_lock lock(queue_mutex_);
    if (inflight_ == 0) idle_cv_.notify_all();
  }
}

RunReport Scheduler::run() {
  const std::uint64_t completed_before = completed_.load(std::memory_order_relaxed);
  {
    std::scoped_lock lock(queue_mutex_);
    stop_ = false;
    running_ = true;
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  {
    std::unique_lock lock(queue_mutex_);
    idle_cv_.wait(lock, [this] { return inflight_ == 0; });
    stop_ = true;
    running_ = false;
  }
  queue_cv_.notify_all();
  workers_.clear();  // joins

  RunReport report;
  report.completed = static_cast<std::size_t>(
      completed_.load(std::memory_order_relaxed) - completed_before);
  {
    std::scoped_lock lock(society_mutex_);
    for (const auto& [pid, p] : society_) {
      std::scoped_lock state_lock(p->state_mutex);
      if (p->state == RunState::Parked) {
        ++report.still_parked;
        std::string entry =
            p->label() + " (" + park_reason_name(p->park_reason) + ")";
        // What is it stuck on? A parked process's top frame names the
        // statement whose guard(s) cannot currently commit.
        if (!p->frames.empty()) {
          const Frame& f = p->frames.back();
          switch (f.type) {
            case Frame::Type::Txn:
              entry += " waiting on: " + f.stmt->txn.to_string();
              break;
            case Frame::Type::Select:
            case Frame::Type::Repeat:
            case Frame::Type::Sweep:
              for (const Branch& b : f.stmt->branches) {
                if (b.guard.type != TxnType::Immediate ||
                    f.type == Frame::Type::Sweep) {
                  entry += "\n    guard: " + b.guard.to_string();
                }
              }
              break;
            default:
              break;
          }
        }
        report.parked.push_back(std::move(entry));
      }
    }
  }
  {
    std::scoped_lock lock(errors_mutex_);
    report.errors = errors_;
    errors_.clear();
  }
  return report;
}

void Scheduler::worker_loop() {
  for (;;) {
    ProcessId pid;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stop requested and no work
      pid = ready_.front();
      ready_.pop_front();
    }

    Process* p = begin_running(pid);
    if (p == nullptr) {
      work_finished();
      continue;
    }

    StepOutcome outcome;
    try {
      outcome = run_process(*p);
    } catch (const std::exception& e) {
      {
        std::scoped_lock lock(errors_mutex_);
        errors_.push_back(p->label() + ": " + e.what());
      }
      p->frames.clear();
      outcome = StepOutcome::Done;
    }

    switch (outcome) {
      case StepOutcome::Continue:  // run_process never returns Continue
      case StepOutcome::Yield:
        {
          std::scoped_lock state_lock(p->state_mutex);
          p->state = RunState::Ready;
        }
        requeue(pid);
        break;
      case StepOutcome::Parked:
        // park_reason was staged by the interpreter in p->park_reason?
        // No: the interpreter passes it via pending_park_reason_. See
        // run_process — it stores the reason in p->park_reason before
        // returning; finalize_park re-checks pending wakes.
        if (finalize_park(*p, p->park_reason)) {
          if (trace_ != nullptr && trace_->enabled()) {
            trace_->record(TraceKind::Park, pid, p->def.name);
          }
          notify_consensus();
          work_finished();
        } else {
          requeue(pid);
        }
        break;
      case StepOutcome::Done:
        complete(*p);
        work_finished();
        break;
    }
  }
}

// ------------------------------------------------------------ interpreter

Scheduler::StepOutcome Scheduler::run_process(Process& p) {
  for (std::size_t steps = 0; steps < options_.quantum; ++steps) {
    if (p.frames.empty()) return StepOutcome::Done;
    if (p.group != nullptr && (p.group->done.load(std::memory_order_acquire) ||
                               p.group->abort.load(std::memory_order_acquire))) {
      p.frames.clear();
      return StepOutcome::Done;
    }

    Frame& f = p.frames.back();
    StepOutcome out = StepOutcome::Continue;
    switch (f.type) {
      case Frame::Type::Seq: {
        if (f.pc >= f.stmt->children.size()) {
          p.frames.pop_back();
        } else {
          const Statement* next = f.stmt->children[f.pc].get();
          ++f.pc;
          push_statement(p, next);
        }
        break;
      }
      case Frame::Type::Txn:
        out = do_transaction(p, f.stmt->txn);
        break;
      case Frame::Type::Select:
        out = do_selection(p, f);
        break;
      case Frame::Type::Repeat:
        if (f.pc == 1) {
          f.pc = 0;  // branch body finished; reselect
        } else {
          out = do_selection(p, f);
        }
        break;
      case Frame::Type::BranchBody:
        // BranchBody frames are plain sequence frames in practice; this
        // type exists for diagnostics only.
        p.frames.pop_back();
        break;
      case Frame::Type::Replicate:
        out = do_replicate_parent(p, f);
        break;
      case Frame::Type::Sweep:
        out = do_sweep(p, f);
        break;
    }
    if (out != StepOutcome::Continue) return out;
  }
  return StepOutcome::Yield;
}

TxnResult Scheduler::execute_engine(Process& p, const Transaction& txn) {
  TxnResult r = engine_.execute(txn, p.env, p.pid, p.view_ptr());
  if (r.success) {
    ++p.txns_committed;
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->record(TraceKind::Commit, p.pid, txn.to_string());
    }
  }
  return r;
}

void Scheduler::ensure_subscription(Process& p, WaitSet::Interest interest) {
  if (p.ticket != WaitSet::kInvalidTicket) return;
  const ProcessId pid = p.pid;
  p.ticket = engine_.waits().subscribe(std::move(interest),
                                       [this, pid] { wake(pid); });
}

void Scheduler::drop_subscription(Process& p) {
  if (p.ticket == WaitSet::kInvalidTicket) return;
  engine_.waits().unsubscribe(p.ticket);
  p.ticket = WaitSet::kInvalidTicket;
}

ControlAction Scheduler::apply_actions(Process& p, const Transaction& txn,
                                       const TxnResult& result) {
  const bool exists = txn.query.quantifier == Quantifier::Exists;
  for (const QueryMatch& m : result.matches) {
    const Env& base = exists ? p.env : m.binding;
    for (const LetAction& let : txn.lets) {
      p.env[static_cast<std::size_t>(let.slot)] =
          let.value->eval(base, engine_.functions());
    }
    for (const SpawnAction& s : txn.spawns) {
      std::vector<Value> args;
      args.reserve(s.args.size());
      for (const ExprPtr& a : s.args) args.push_back(a->eval(base, engine_.functions()));
      spawn(s.process_type, std::move(args));
    }
  }
  return txn.control;
}

Scheduler::StepOutcome Scheduler::handle_exit(Process& p) {
  while (!p.frames.empty()) {
    if (p.frames.back().type == Frame::Type::Sweep) {
      // `exit` inside a replicated sequence terminates the replication
      // construct (the analogue of "terminates ... the repetition", §2.3).
      ReplicationGroup* g = p.group;
      g->done.store(true, std::memory_order_release);
      wake_group(*g, p.pid);
      p.frames.clear();
      return StepOutcome::Done;
    }
    const Frame::Type t = p.frames.back().type;
    p.frames.pop_back();
    if (t == Frame::Type::Repeat) return StepOutcome::Continue;
  }
  return StepOutcome::Done;
}

Scheduler::StepOutcome Scheduler::handle_abort(Process& p) {
  if (p.group != nullptr) {
    p.group->abort.store(true, std::memory_order_release);
    p.group->done.store(true, std::memory_order_release);
    wake_group(*p.group, p.pid);
  }
  p.frames.clear();
  return StepOutcome::Done;
}

Scheduler::StepOutcome Scheduler::do_transaction(Process& p,
                                                 const Transaction& txn) {
  switch (txn.type) {
    case TxnType::Immediate: {
      const TxnResult r = execute_engine(p, txn);
      p.frames.pop_back();
      if (r.success) {
        const ControlAction c = apply_actions(p, txn, r);
        if (c == ControlAction::Exit) return handle_exit(p);
        if (c == ControlAction::Abort) return handle_abort(p);
      }
      // Failure of a standalone immediate transaction acts as skip.
      return StepOutcome::Continue;
    }
    case TxnType::Delayed: {
      // A live ticket means this is a re-check after a park: the first
      // attempt already failed, so probe under read locks before paying
      // for the full (exclusively locked) execute — a parked society
      // re-checking disabled guards then contends only on shared locks.
      // The subscription stays active throughout, so a commit racing the
      // probe still wakes us (no lost wakeup). Read-only transactions
      // skip the probe: their execute() is already the shared-lock path.
      const bool recheck = p.ticket != WaitSet::kInvalidTicket;
      ensure_subscription(p, engine_.interest_of(txn, p.env));
      if (recheck && !txn.is_read_only() &&
          !engine_.probe(txn, p.env, p.view_ptr())) {
        p.park_reason = ParkReason::DelayedTxn;
        return StepOutcome::Parked;
      }
      const TxnResult r = execute_engine(p, txn);
      if (!r.success) {
        p.park_reason = ParkReason::DelayedTxn;
        return StepOutcome::Parked;
      }
      drop_subscription(p);
      p.frames.pop_back();
      const ControlAction c = apply_actions(p, txn, r);
      if (c == ControlAction::Exit) return handle_exit(p);
      if (c == ControlAction::Abort) return handle_abort(p);
      return StepOutcome::Continue;
    }
    case TxnType::Consensus: {
      if (p.consensus_result.has_value()) {
        const ConsensusResult res = std::move(*p.consensus_result);
        p.consensus_result.reset();
        drop_subscription(p);
        p.frames.pop_back();
        const ControlAction c = apply_actions(p, txn, res.result);
        if (c == ControlAction::Exit) return handle_exit(p);
        if (c == ControlAction::Abort) return handle_abort(p);
        return StepOutcome::Continue;
      }
      ensure_subscription(p, engine_.interest_of(txn, p.env));
      p.offers = {ConsensusOffer{&txn, -1}};
      p.park_reason = ParkReason::Consensus;
      return StepOutcome::Parked;
    }
  }
  return StepOutcome::Continue;
}

Scheduler::StepOutcome Scheduler::do_selection(Process& p, Frame& f) {
  const std::vector<Branch>& branches = f.stmt->branches;
  const bool is_repeat = f.type == Frame::Type::Repeat;

  // Commit a chosen branch: apply guard actions, then run its body.
  auto choose = [&](std::size_t idx, const TxnResult& r) -> StepOutcome {
    drop_subscription(p);
    p.offers.clear();
    const Branch& br = branches[idx];
    const ControlAction c = apply_actions(p, br.guard, r);
    if (c == ControlAction::Exit) return handle_exit(p);
    if (c == ControlAction::Abort) return handle_abort(p);
    if (is_repeat) {
      f.pc = 1;  // reselect when the body finishes
      if (br.body) {
        push_statement(p, br.body.get());
      } else {
        f.pc = 0;  // guard-only branch: reselect immediately
      }
    } else {
      p.frames.pop_back();
      if (br.body) push_statement(p, br.body.get());
    }
    return StepOutcome::Continue;
  };

  // 1. A consensus fired for one of our offers while parked here.
  if (p.consensus_result.has_value()) {
    const ConsensusResult res = std::move(*p.consensus_result);
    p.consensus_result.reset();
    return choose(static_cast<std::size_t>(res.branch), res.result);
  }

  // 2. Subscribe before attempting if any guard can block — the wakeup
  //    discipline requires subscription before evaluation.
  bool has_blocking = false;
  for (const Branch& b : branches) {
    if (b.guard.type != TxnType::Immediate) {
      has_blocking = true;
      break;
    }
  }
  if (has_blocking && p.ticket == WaitSet::kInvalidTicket) {
    WaitSet::Interest interest;
    for (const Branch& b : branches) {
      WaitSet::Interest one = engine_.interest_of(b.guard, p.env);
      interest.keys.insert(interest.keys.end(), one.keys.begin(), one.keys.end());
      interest.arities.insert(interest.arities.end(), one.arities.begin(),
                              one.arities.end());
    }
    ensure_subscription(p, std::move(interest));
  }

  // 3. Try every non-consensus guard once, in order.
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (branches[i].guard.type == TxnType::Consensus) continue;
    const TxnResult r = execute_engine(p, branches[i].guard);
    if (r.success) return choose(i, r);
  }

  // 4. Nothing committed. Fail (skip / end repetition) or park.
  if (!has_blocking) {
    drop_subscription(p);
    p.frames.pop_back();  // Select: skip. Repeat: loop terminates.
    return StepOutcome::Continue;
  }
  p.offers.clear();
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (branches[i].guard.type == TxnType::Consensus) {
      p.offers.push_back(ConsensusOffer{&branches[i].guard, static_cast<int>(i)});
    }
  }
  p.park_reason =
      p.offers.empty() ? ParkReason::Selection : ParkReason::Consensus;
  return StepOutcome::Parked;
}

Scheduler::StepOutcome Scheduler::do_replicate_parent(Process& p, Frame& f) {
  if (f.pc == 0) {
    if (f.stmt->branches.empty()) {
      p.frames.pop_back();
      return StepOutcome::Continue;
    }
    auto group = std::make_shared<ReplicationGroup>();
    group->stmt = f.stmt;
    group->parent = p.pid;
    group->width = static_cast<int>(options_.replication_width);
    group->active.store(group->width, std::memory_order_relaxed);
    p.owned_group = group;
    f.pc = 1;
    std::vector<ProcessId> members;
    members.reserve(static_cast<std::size_t>(group->width));
    for (int i = 0; i < group->width; ++i) {
      members.push_back(spawn_replicant(p, group.get()));
    }
    group->members = members;  // fixed before any replicant runs? see below
    // Replicants were inserted into the society but not yet queued; queue
    // them only after `members` is final so wake_group sees all pids.
    for (ProcessId pid : members) enqueue_new(pid);
    p.park_reason = ParkReason::Replication;
    return StepOutcome::Parked;
  }
  // Resumed: the group must be done (wakes only come from the last
  // replicant); tolerate spurious wakes by re-parking.
  auto group = p.owned_group;
  if (!group || !group->done.load(std::memory_order_acquire)) {
    p.park_reason = ParkReason::Replication;
    return StepOutcome::Parked;
  }
  const bool aborted = group->abort.load(std::memory_order_acquire);
  p.owned_group.reset();
  p.frames.pop_back();
  if (aborted) return handle_abort(p);
  return StepOutcome::Continue;
}

int Scheduler::try_guards(Process& p, const std::vector<Branch>& branches,
                          TxnResult& result) {
  for (std::size_t i = 0; i < branches.size(); ++i) {
    // Inside replication every guard is attempted eagerly; the construct
    // itself provides the retry-until-enabled behavior, so the '=>' tag
    // adds nothing and consensus guards are not meaningful here (§2.3's
    // examples use '->' guards).
    //
    // Most sweep attempts hit disabled guards, so evaluate each guard
    // first under read locks (probe); only a guard that looks enabled
    // pays for the exclusively locked execute, which revalidates.
    // Read-only guards go straight to execute — it is already the
    // shared-lock path.
    const Transaction& guard = branches[i].guard;
    if (!guard.is_read_only() && !engine_.probe(guard, p.env, p.view_ptr())) {
      continue;
    }
    result = execute_engine(p, guard);
    if (result.success) return static_cast<int>(i);
  }
  return -1;
}

Scheduler::StepOutcome Scheduler::do_sweep(Process& p, Frame& f) {
  ReplicationGroup* group = p.group;
  const std::vector<Branch>& branches = f.stmt->branches;

  {
    WaitSet::Interest interest;
    for (const Branch& b : branches) {
      WaitSet::Interest one = engine_.interest_of(b.guard, p.env);
      interest.keys.insert(interest.keys.end(), one.keys.begin(), one.keys.end());
      interest.arities.insert(interest.arities.end(), one.arities.begin(),
                              one.arities.end());
    }
    ensure_subscription(p, std::move(interest));
  }

  TxnResult r;
  const int idx = try_guards(p, branches, r);
  if (idx >= 0) {
    const Branch& br = branches[static_cast<std::size_t>(idx)];
    const ControlAction c = apply_actions(p, br.guard, r);
    if (c == ControlAction::Exit) return handle_exit(p);
    if (c == ControlAction::Abort) return handle_abort(p);
    if (br.body) push_statement(p, br.body.get());
    return StepOutcome::Continue;
  }

  // Every guard failed. Count ourselves parked; the last parker verifies
  // global disablement under total exclusion before declaring the
  // construct finished.
  p.counted_parked = true;
  const int parked_now = group->parked.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (parked_now == group->width) {
    bool enabled = false;
    engine_.exclusive([&]() -> std::vector<IndexKey> {
      for (const Branch& b : branches) {
        QueryOutcome probe;
        if (p.view_ptr() != nullptr && !p.view_ptr()->imports_everything()) {
          const WindowSource window(engine_.space(), *p.view_ptr(), p.env,
                                    engine_.functions());
          probe = b.guard.query.evaluate(window, p.env, engine_.functions());
        } else {
          const DataspaceSource source(engine_.space());
          probe = b.guard.query.evaluate(source, p.env, engine_.functions());
        }
        if (probe.success) {
          enabled = true;
          break;
        }
      }
      return {};
    });
    if (enabled) {
      group->parked.fetch_sub(1, std::memory_order_acq_rel);
      p.counted_parked = false;
      return StepOutcome::Continue;  // retry the sweep with effects
    }
    group->done.store(true, std::memory_order_release);
    group->parked.fetch_sub(1, std::memory_order_acq_rel);
    p.counted_parked = false;
    wake_group(*group, p.pid);
    p.frames.clear();
    return StepOutcome::Done;
  }
  p.park_reason = ParkReason::Replication;
  return StepOutcome::Parked;
}

void Scheduler::wake_group(ReplicationGroup& group, ProcessId except) {
  for (ProcessId pid : group.members) {
    if (pid != except) wake(pid);
  }
}

}  // namespace sdl
