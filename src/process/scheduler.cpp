#include "process/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "consensus/consensus.hpp"
#include "core/epoch.hpp"

namespace sdl {

namespace {

const char* park_reason_name(ParkReason r) {
  switch (r) {
    case ParkReason::None: return "none";
    case ParkReason::DelayedTxn: return "delayed-transaction";
    case ParkReason::Selection: return "selection";
    case ParkReason::Consensus: return "consensus";
    case ParkReason::Replication: return "replication";
  }
  return "?";
}

/// Collects every transaction in a statement tree, branch guards included.
/// Used by the wait-for diagnosis to over-approximate what a live process
/// may still assert (its whole body, not just the statements ahead of its
/// program counter — conservative, never misses a supplier).
void collect_txns(const Statement* s, std::vector<const Transaction*>& out) {
  if (s == nullptr) return;
  switch (s->kind) {
    case Statement::Kind::Txn:
      out.push_back(&s->txn);
      break;
    case Statement::Kind::Sequence:
      for (const StmtPtr& c : s->children) collect_txns(c.get(), out);
      break;
    default:
      for (const Branch& b : s->branches) {
        out.push_back(&b.guard);
        collect_txns(b.body.get(), out);
      }
      break;
  }
}

/// Could a write set land in any bucket this waiter listens to?
bool interest_overlaps(const WaitSet::Interest& in,
                       const Transaction::WriteSet& ws) {
  if (ws.unknown) return true;  // bucket not computable: assume overlap
  if (ws.exact.empty()) return false;
  if (in.everything) return true;
  for (const IndexKey& k : ws.exact) {
    for (const IndexKey& ik : in.keys) {
      if (ik == k) return true;
    }
    for (std::uint32_t a : in.arities) {
      if (a == k.arity) return true;
    }
  }
  return false;
}

}  // namespace

Scheduler::Scheduler(Engine& engine, SchedulerOptions opts)
    : engine_(engine), options_(opts) {
  if (deterministic()) {
    // Single coordinator, one interpreter step per decision point, and a
    // machine-independent replication width — the whole point is that the
    // same seed replays the same schedule anywhere.
    options_.workers = 1;
    options_.quantum = 1;
    if (options_.replication_width == 0) options_.replication_width = 4;
  }
  if (options_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.workers = hw >= 2 ? hw : 2;
  }
  if (options_.quantum == 0) options_.quantum = 1;
  if (options_.replication_width == 0) {
    options_.replication_width = options_.workers;
  }
  if (options_.watchdog_tick_ms <= 0) options_.watchdog_tick_ms = 1;
}

Scheduler::~Scheduler() {
  {
    std::scoped_lock lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  workers_.clear();
  if (watchdog_.joinable()) {
    watchdog_.request_stop();
    watchdog_cv_.notify_all();
    watchdog_ = std::jthread();
  }
  // Workers are joined (their epoch pins are gone and their retire lists
  // migrated to the orphan pool), so everything erase() deferred is
  // collectable now.
  epoch::drain();
}

const ProcessDef& Scheduler::define(ProcessDef def) {
  if (!def.finalized()) def.finalize();
  auto owned = std::make_unique<ProcessDef>(std::move(def));
  // Copy the key: emplace may consume `owned` even when insertion fails
  // (the node can be built before the duplicate is discovered).
  const std::string name = owned->name;
  std::scoped_lock lock(defs_mutex_);
  auto [it, inserted] = defs_.emplace(name, std::move(owned));
  if (!inserted) {
    throw std::invalid_argument("Scheduler: duplicate process definition '" +
                                name + "'");
  }
  return *it->second;
}

const ProcessDef* Scheduler::find_def(const std::string& name) const {
  std::scoped_lock lock(defs_mutex_);
  auto it = defs_.find(name);
  return it == defs_.end() ? nullptr : it->second.get();
}

ProcessId Scheduler::spawn(const std::string& def_name, std::vector<Value> args) {
  const ProcessDef* def = find_def(def_name);
  if (def == nullptr) {
    throw std::invalid_argument("Scheduler: unknown process type '" + def_name + "'");
  }
  ProcessId pid;
  {
    std::scoped_lock lock(society_mutex_);
    pid = next_pid_++;
    society_.emplace(pid, std::make_unique<Process>(pid, *def, std::move(args)));
  }
  spawned_.fetch_add(1, std::memory_order_relaxed);
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->record(TraceKind::Spawn, pid, def_name);
  }
  enqueue_new(pid);
  return pid;
}

ProcessId Scheduler::spawn_replicant(
    const Process& parent, const std::shared_ptr<ReplicationGroup>& group) {
  ProcessId pid;
  {
    std::scoped_lock lock(society_mutex_);
    pid = next_pid_++;
    society_.emplace(pid, std::make_unique<Process>(pid, parent, group));
  }
  spawned_.fetch_add(1, std::memory_order_relaxed);
  return pid;
}

void Scheduler::with_live(
    const std::function<void(const std::vector<Process*>&)>& fn) {
  std::scoped_lock lock(society_mutex_);
  std::vector<Process*> live;
  live.reserve(society_.size());
  for (auto& [pid, p] : society_) live.push_back(p.get());
  fn(live);
}

std::size_t Scheduler::live_count() const {
  std::scoped_lock lock(society_mutex_);
  return society_.size();
}

void Scheduler::enqueue_new(ProcessId pid) {
  {
    std::scoped_lock lock(queue_mutex_);
    ready_.push_back(pid);
    ++inflight_;
  }
  queue_cv_.notify_one();
}

void Scheduler::enqueue_ready(ProcessId pid) { enqueue_new(pid); }

void Scheduler::requeue(ProcessId pid) {
  {
    std::scoped_lock lock(queue_mutex_);
    ready_.push_back(pid);  // still counted in inflight_
  }
  queue_cv_.notify_one();
}

void Scheduler::wake(ProcessId pid) {
  std::scoped_lock society_lock(society_mutex_);
  auto it = society_.find(pid);
  if (it == society_.end()) return;
  Process& p = *it->second;
  bool enqueue = false;
  {
    std::scoped_lock state_lock(p.state_mutex);
    switch (p.state) {
      case RunState::Parked:
        p.state = RunState::Ready;
        p.park_reason = ParkReason::None;
        if (obs_metrics() != nullptr) p.woke_at_ns = obs::now_ns();
        enqueue = true;
        break;
      case RunState::Running:
      case RunState::Claimed:
        p.pending_wake = true;
        break;
      case RunState::Ready:
      case RunState::Done:
        break;
    }
  }
  if (enqueue) {
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->record(TraceKind::Wake, pid, p.def.name);
    }
    enqueue_new(pid);
  }
}

bool Scheduler::kill(ProcessId pid) {
  bool wake_it = false;
  {
    std::scoped_lock society_lock(society_mutex_);
    auto it = society_.find(pid);
    if (it == society_.end()) return false;
    Process& p = *it->second;
    p.pending_kill.store(true, std::memory_order_release);
    std::scoped_lock state_lock(p.state_mutex);
    if (p.state == RunState::Parked) {
      p.state = RunState::Ready;
      wake_it = true;
    }
    // Ready / Running / Claimed: the flag is honored when a worker next
    // owns the process — at dispatch, at the quantum boundary, or on
    // consensus resume. A victim claimed by a firing consensus still
    // contributes its offer (the composite commit is atomic and already
    // decided); only its local continuation is discarded, which is
    // exactly a crash after the commit.
  }
  if (wake_it) enqueue_new(pid);
  return true;
}

void Scheduler::wake_one_parked(std::uint64_t salt) {
  ProcessId victim = 0;
  {
    std::scoped_lock society_lock(society_mutex_);
    std::vector<ProcessId> parked;
    parked.reserve(society_.size());
    for (auto& [pid, p] : society_) {
      std::scoped_lock state_lock(p->state_mutex);
      if (p->state == RunState::Parked) parked.push_back(pid);
    }
    if (parked.empty()) return;
    std::sort(parked.begin(), parked.end());
    victim = parked[salt % parked.size()];
  }
  // wake() re-acquires society_mutex_, so call it outside the lock. The
  // victim re-checks its guards and re-parks — a spurious wake is safe by
  // the subscribe-first discipline, which is the point of injecting it.
  wake(victim);
}

obs::LatencyHistogram* Scheduler::park_histogram(obs::RuntimeMetrics* m,
                                                 ParkReason reason) {
  switch (reason) {
    case ParkReason::DelayedTxn:
      return m->park_delayed_txn_ns;
    case ParkReason::Selection:
      return m->park_selection_ns;
    case ParkReason::Consensus:
      return m->park_consensus_ns;
    case ParkReason::Replication:
      return m->park_replication_ns;
    case ParkReason::None:
      break;
  }
  return nullptr;
}

Process* Scheduler::begin_running(ProcessId pid) {
  std::scoped_lock society_lock(society_mutex_);
  auto it = society_.find(pid);
  if (it == society_.end()) return nullptr;
  Process& p = *it->second;
  {
    std::scoped_lock state_lock(p.state_mutex);
    assert(p.state == RunState::Ready);
    // Deadline-staging invariant (audited; see finalize_park): every
    // interpreter path that stages park_timeout_ms returns Parked
    // immediately after, and finalize_park consumes-and-resets the staged
    // value unconditionally — including when a pending wake cancels the
    // park (the interpreter re-stages on its next park attempt). So a
    // process can never reach dispatch with a stale staged timeout.
    assert(p.park_timeout_ms == 0 &&
           "staged park timeout must be consumed by finalize_park");
    if (obs::RuntimeMetrics* const m = obs_metrics(); m != nullptr) {
      const std::uint64_t now = obs::now_ns();
      if (p.park_started_ns != 0) {
        if (obs::LatencyHistogram* h = park_histogram(m, p.obs_park_reason)) {
          h->record(now > p.park_started_ns ? now - p.park_started_ns : 0);
        }
      }
      if (p.woke_at_ns != 0) {
        m->wake_to_dispatch_ns->record(now > p.woke_at_ns ? now - p.woke_at_ns
                                                          : 0);
      }
    }
    p.park_started_ns = 0;
    p.woke_at_ns = 0;
    p.obs_park_reason = ParkReason::None;
    p.state = RunState::Running;
    p.pending_wake = false;
    p.park_reason = ParkReason::None;
    if (p.counted_waiter) {
      consensus_waiters_.fetch_sub(1, std::memory_order_relaxed);
      p.counted_waiter = false;
    }
    p.offers.clear();
    if (p.has_deadline) {
      p.has_deadline = false;
      deadlines_armed_.fetch_sub(1, std::memory_order_release);
    }
  }
  if (p.counted_parked && p.group != nullptr) {
    p.group->parked.fetch_sub(1, std::memory_order_acq_rel);
    p.counted_parked = false;
  }
  return &p;
}

bool Scheduler::finalize_park(Process& p, ParkReason reason) {
  // Deadline for this park: the statement's staged timeout wins; 0 falls
  // back to the scheduler default for the park reason; negative (or a
  // replication park, whose construct has its own termination detection)
  // means never.
  //
  // Staging invariant: park_timeout_ms is consumed-and-reset HERE,
  // unconditionally and before the pending-wake check below, so a park
  // cancelled between staging and arming cannot leave a stale timeout
  // behind (the interpreter re-stages before its next Parked return, and
  // begin_running asserts the field is clear at dispatch). The
  // deadlines_armed_ counter is equally balanced: armed only in the
  // successful-park branch below, disarmed exactly once per armed park —
  // by begin_running on dispatch or by retire() on teardown; a cancelled
  // park never reaches the arming code.
  const std::int64_t staged = p.park_timeout_ms;
  p.park_timeout_ms = 0;
  std::int64_t timeout_ms = 0;
  switch (reason) {
    case ParkReason::DelayedTxn:
    case ParkReason::Selection:
      timeout_ms = options_.delayed_txn_timeout_ms;
      break;
    case ParkReason::Consensus:
      timeout_ms = options_.consensus_timeout_ms;
      break;
    default:
      break;
  }
  if (staged > 0) timeout_ms = staged;
  if (staged < 0 || reason == ParkReason::Replication) timeout_ms = 0;
  // Saturated-bucket shedding: a park into a WaitSet bucket past its cap
  // gets a forced short deadline — even one staged "never" — so overload
  // converts into bounded timeouts instead of an unbounded park set.
  // Replication parks are exempt (their construct detects termination
  // itself; shedding a sweeper would wedge the group accounting).
  if (overload_ != nullptr && p.park_saturated &&
      reason != ParkReason::Replication) {
    const std::int64_t cap_ms = overload_->options().saturated_park_timeout_ms;
    if (cap_ms > 0 && (timeout_ms <= 0 || timeout_ms > cap_ms)) {
      timeout_ms = cap_ms;
    }
  }

  bool armed = false;
  {
    std::scoped_lock state_lock(p.state_mutex);
    if (p.pending_wake) {
      p.pending_wake = false;
      p.state = RunState::Ready;
      return false;  // caller requeues
    }
    p.state = RunState::Parked;
    p.park_reason = reason;
    if (obs_metrics() != nullptr) {
      p.park_started_ns = obs::now_ns();
      p.obs_park_reason = reason;
      p.woke_at_ns = 0;
    }
    if (!p.offers.empty()) {
      consensus_waiters_.fetch_add(1, std::memory_order_relaxed);
      p.counted_waiter = true;
    }
    if (timeout_ms > 0) {
      p.has_deadline = true;
      p.deadline = park_clock_now() + std::chrono::milliseconds(timeout_ms);
      deadlines_armed_.fetch_add(1, std::memory_order_release);
      armed = true;
    }
  }
  if (armed) watchdog_cv_.notify_all();  // watchdog may be idle-waiting
  return true;
}

void Scheduler::retire(Process& p, RetireKind kind, std::string note) {
  // The single teardown path, crash-safe by construction:
  // 1. The WaitSet subscription cannot outlive the process — a later
  //    publish must not invoke a wake for an erased pid (harmless today
  //    because wake() checks the society, but the subscription itself
  //    would leak forever).
  drop_subscription(p);
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->record(TraceKind::Terminate, p.pid, p.def.name);
  }
  // 2. Withdraw consensus offers under the state lock: a concurrently
  //    sweeping consensus manager either observes the process still
  //    Parked with offers (and may claim it before we get the lock) or
  //    observes Done with no offers — never a claim on a dying process.
  {
    std::scoped_lock state_lock(p.state_mutex);
    p.state = RunState::Done;
    p.offers.clear();
    p.consensus_result.reset();
    if (p.counted_waiter) {
      consensus_waiters_.fetch_sub(1, std::memory_order_relaxed);
      p.counted_waiter = false;
    }
    if (p.has_deadline) {
      p.has_deadline = false;
      deadlines_armed_.fetch_sub(1, std::memory_order_release);
    }
  }
  // 3. Settle replication accounting. The group is held by shared_ptr, so
  //    a parent torn down early cannot dangle its replicants.
  std::shared_ptr<ReplicationGroup> group = p.group;
  const ProcessId pid = p.pid;
  if (p.counted_parked && group != nullptr) {
    group->parked.fetch_sub(1, std::memory_order_acq_rel);
    p.counted_parked = false;
  }
  if (p.owned_group != nullptr && kind != RetireKind::Completed) {
    // A parent that dies mid-replication aborts the construct; replicants
    // observe done/abort on their next step and drain instead of sweeping
    // for a vanished parent.
    p.owned_group->abort.store(true, std::memory_order_release);
    p.owned_group->done.store(true, std::memory_order_release);
    wake_group(*p.owned_group, p.pid);
  }
  if (group != nullptr && kind != RetireKind::Completed) {
    // A replicant dying abnormally can never park, so shrink the member
    // count the termination check compares against and wake the group: a
    // surviving member re-sweeps and redoes the last-parker check with
    // the new width (otherwise the construct waits for the dead forever).
    group->width.fetch_sub(1, std::memory_order_acq_rel);
    wake_group(*group, pid);
  }
  ProcessId wake_parent = 0;
  if (group != nullptr &&
      group->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    wake_parent = group->parent;
  }
  {
    std::scoped_lock society_lock(society_mutex_);
    society_.erase(pid);
  }
  switch (kind) {
    case RetireKind::Completed:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RetireKind::Errored: {
      std::scoped_lock lock(report_mutex_);
      errors_.push_back(std::move(note));
      break;
    }
    case RetireKind::Killed: {
      killed_total_.fetch_add(1, std::memory_order_relaxed);
      std::scoped_lock lock(report_mutex_);
      killed_.push_back(std::move(note));
      break;
    }
    case RetireKind::TimedOut: {
      timeouts_total_.fetch_add(1, std::memory_order_relaxed);
      std::scoped_lock lock(report_mutex_);
      timed_out_.push_back(std::move(note));
      break;
    }
  }
  if (wake_parent != 0) wake(wake_parent);
  notify_consensus();  // membership changed
}

void Scheduler::notify_consensus() {
  if (consensus_ != nullptr &&
      consensus_waiters_.load(std::memory_order_relaxed) > 0) {
    consensus_->notify();
  }
}

void Scheduler::work_finished() {
  bool idle;
  {
    std::scoped_lock lock(queue_mutex_);
    --inflight_;
    idle = inflight_ == 0;
  }
  if (idle) {
    // A parked consensus set may be fireable now that nothing is running.
    notify_consensus();
    std::scoped_lock lock(queue_mutex_);
    if (inflight_ == 0) idle_cv_.notify_all();
  }
}

// --------------------------------------------------------------- deadlines

void Scheduler::watchdog_loop(const std::stop_token& st) {
  // With the epoch-backlog watchdog armed the loop must keep ticking even
  // when no park deadlines are armed — the backlog grows from the read
  // path, which never arms a deadline.
  const bool overload_tick =
      overload_ != nullptr && overload_->options().epoch_backlog_threshold != 0;
  std::unique_lock lock(watchdog_mutex_);
  while (!st.stop_requested()) {
    if (!overload_tick &&
        deadlines_armed_.load(std::memory_order_acquire) == 0) {
      // Nothing armed: sleep until a park arms a deadline (or stop).
      watchdog_cv_.wait(lock, st, [this] {
        return deadlines_armed_.load(std::memory_order_acquire) > 0;
      });
      continue;
    }
    watchdog_cv_.wait_for(lock, st,
                          std::chrono::milliseconds(options_.watchdog_tick_ms),
                          [] { return false; });
    if (st.stop_requested()) break;
    lock.unlock();
    if (deadlines_armed_.load(std::memory_order_acquire) > 0) {
      expire_deadlines(std::chrono::steady_clock::now());
    }
    if (overload_tick) overload_->tick();
    lock.lock();
  }
}

std::chrono::steady_clock::time_point Scheduler::park_clock_now() const {
  return deterministic() ? det_now_ : std::chrono::steady_clock::now();
}

void Scheduler::expire_deadlines(std::chrono::steady_clock::time_point now) {
  std::vector<ProcessId> expired;
  {
    std::scoped_lock society_lock(society_mutex_);
    for (auto& [pid, p] : society_) {
      {
        std::scoped_lock state_lock(p->state_mutex);
        // Claimed processes are mid-consensus-fire: their deadline is
        // held over (checked again if the claim reverts them to Parked).
        if (p->state != RunState::Parked || !p->has_deadline) continue;
        if (now < p->deadline) continue;
        p->timed_out.store(true, std::memory_order_release);
        p->state = RunState::Ready;
        if (obs_metrics() != nullptr) p->woke_at_ns = obs::now_ns();
        // has_deadline stays set (and deadlines_armed_ stays raised)
        // until begin_running hands the process to its retiring worker —
        // the quiescence check must keep treating it as pending work.
      }
      // Build the wait-for diagnosis NOW, while the park state (frames,
      // interest, environment) is intact and we exclusively control the
      // process: it is Ready but not yet enqueued, and holding
      // society_mutex_ blocks any begin_running.
      p->timeout_note = p->label() + " (" +
                        park_reason_name(p->park_reason) +
                        ") park deadline expired" + explain_park_locked(*p);
      expired.push_back(pid);
    }
  }
  // Society iteration order is a hash-map accident; the enqueue order must
  // not be (it is part of the deterministic-mode schedule).
  std::sort(expired.begin(), expired.end());
  for (ProcessId pid : expired) {
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->record(TraceKind::Wake, pid, "deadline");
    }
    enqueue_new(pid);
  }
}

// --------------------------------------------------------------- diagnosis

std::string Scheduler::explain_park_locked(const Process& p) const {
  std::string out;
  if (!p.frames.empty()) {
    const Frame& f = p.frames.back();
    switch (f.type) {
      case Frame::Type::Txn:
        out += " waiting on: " + f.stmt->txn.to_string();
        break;
      case Frame::Type::Select:
      case Frame::Type::Repeat:
      case Frame::Type::Sweep:
        for (const Branch& b : f.stmt->branches) {
          if (b.guard.type != TxnType::Immediate ||
              f.type == Frame::Type::Sweep) {
            out += "\n    guard: " + b.guard.to_string();
          }
        }
        break;
      default:
        break;
    }
  }
  if (p.ticket == WaitSet::kInvalidTicket) return out;

  // What would have to be published to wake it.
  out += "\n    subscribed to: ";
  if (p.interest.everything) {
    out += "every commit";
  } else {
    bool first = true;
    for (const IndexKey& k : p.interest.keys) {
      if (!first) out += ", ";
      first = false;
      out += "bucket(arity=" + std::to_string(k.arity) + ", head#" +
             std::to_string(k.head_hash) + ")";
    }
    for (std::uint32_t a : p.interest.arities) {
      if (!first) out += ", ";
      first = false;
      out += "arity=" + std::to_string(a);
    }
    if (first) out += "(nothing)";
  }

  // Which live processes could still assert a matching tuple. Each body
  // is scanned whole (over-approximation); a Running process's
  // environment cannot be read safely, so its write sets are evaluated
  // against an empty environment — unresolvable heads degrade to
  // "unknown", which only adds candidates, never drops one.
  std::vector<std::string> suppliers;
  for (const auto& [qid, q] : society_) {
    if (qid == p.pid) continue;
    RunState qs;
    {
      std::scoped_lock state_lock(q->state_mutex);
      qs = q->state;
    }
    if (qs == RunState::Done) continue;
    Env scratch;
    const Env* env = &q->env;
    if (qs == RunState::Running) {
      scratch.resize(q->def.env_size());
      env = &scratch;
    }
    std::vector<const Transaction*> txns;
    collect_txns(q->def.body.get(), txns);
    for (const Transaction* t : txns) {
      if (t->is_read_only()) continue;
      if (interest_overlaps(p.interest,
                            t->write_set(*env, engine_.functions()))) {
        suppliers.push_back(q->label());
        break;
      }
    }
  }
  if (suppliers.empty()) {
    out += "\n    no live process can assert a matching tuple";
  } else {
    std::sort(suppliers.begin(), suppliers.end());
    out += "\n    may be supplied by: ";
    const std::size_t shown = std::min<std::size_t>(suppliers.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      if (i > 0) out += ", ";
      out += suppliers[i];
    }
    if (suppliers.size() > shown) {
      out += " (+" + std::to_string(suppliers.size() - shown) + " more)";
    }
  }
  return out;
}

std::string Scheduler::explain_park(const Process& p) {
  std::scoped_lock lock(society_mutex_);
  return explain_park_locked(p);
}

// --------------------------------------------------------------------- run

RunReport Scheduler::run() {
  if (deterministic()) return run_deterministic();
  const std::uint64_t completed_before = completed_.load(std::memory_order_relaxed);
  {
    std::scoped_lock lock(queue_mutex_);
    stop_ = false;
    running_ = true;
  }
  watchdog_ = std::jthread([this](const std::stop_token& st) { watchdog_loop(st); });
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  {
    std::unique_lock lock(queue_mutex_);
    for (;;) {
      idle_cv_.wait(lock, [this] { return inflight_ == 0; });
      if (deadlines_armed_.load(std::memory_order_acquire) == 0) break;
      // Quiescent, but a park deadline is armed: the watchdog is about to
      // expire a parker (which raises inflight_ again). Re-check at tick
      // granularity instead of declaring the society parked forever.
      idle_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.watchdog_tick_ms),
                        [this] { return inflight_ > 0; });
    }
    stop_ = true;
    running_ = false;
  }
  queue_cv_.notify_all();
  workers_.clear();  // joins
  watchdog_.request_stop();
  watchdog_cv_.notify_all();
  watchdog_ = std::jthread();  // joins
  // Quiescent: the joined workers' retire lists (tuples retracted during
  // the run) sit in the EBR orphan pool — reclaim them before reporting.
  epoch::drain();
  return build_report(completed_before);
}

RunReport Scheduler::run_deterministic() {
  const std::uint64_t completed_before =
      completed_.load(std::memory_order_relaxed);
  {
    std::scoped_lock lock(queue_mutex_);
    stop_ = false;
    running_ = true;
  }
  det_now_ = std::chrono::steady_clock::time_point{};  // virtual epoch

  sim::SeededDecisionSource seeded(
      static_cast<std::uint64_t>(options_.deterministic_seed));
  sim::DecisionSource* source =
      decision_source_ != nullptr ? decision_source_ : &seeded;

  for (;;) {
    std::vector<ProcessId> candidates;
    {
      std::scoped_lock lock(queue_mutex_);
      candidates.assign(ready_.begin(), ready_.end());
    }
    if (candidates.empty()) {
      // Nothing runnable. A parked consensus set may be fireable now —
      // the threaded mode's work_finished() does the same at idle.
      notify_consensus();
      {
        std::scoped_lock lock(queue_mutex_);
        if (!ready_.empty()) continue;
      }
      if (deadlines_armed_.load(std::memory_order_acquire) > 0 &&
          det_advance_clock()) {
        continue;
      }
      break;  // quiescent
    }

    std::size_t choice = source->pick(candidates);
    if (choice >= candidates.size()) choice = candidates.size() - 1;
    const ProcessId pid = candidates[choice];
    {
      std::scoped_lock lock(queue_mutex_);
      auto it = std::find(ready_.begin(), ready_.end(), pid);
      assert(it != ready_.end());  // single-threaded: the snapshot is live
      ready_.erase(it);
    }

    // Opaque-step detection: anything the bucket footprint cannot express
    // (spawn, termination, kill, timeout, consensus fire) shows up in the
    // counters and makes the step dependent with every other.
    const std::uint64_t spawned0 = spawned_.load(std::memory_order_relaxed);
    const std::uint64_t completed0 = completed_.load(std::memory_order_relaxed);
    const std::uint64_t killed0 = killed_total_.load(std::memory_order_relaxed);
    const std::uint64_t timeouts0 =
        timeouts_total_.load(std::memory_order_relaxed);
    const std::uint64_t fires0 = consensus_ != nullptr ? consensus_->fires() : 0;

    sim_step_ = sim::SimStep{};
    sim_step_.pid = pid;
    sim_recording_ = true;
    dispatch_one(pid);
    sim_recording_ = false;
    sim_step_.opaque =
        spawned_.load(std::memory_order_relaxed) != spawned0 ||
        completed_.load(std::memory_order_relaxed) != completed0 ||
        killed_total_.load(std::memory_order_relaxed) != killed0 ||
        timeouts_total_.load(std::memory_order_relaxed) != timeouts0 ||
        (consensus_ != nullptr && consensus_->fires() != fires0);
    source->observe(sim_step_);
  }

  {
    std::scoped_lock lock(queue_mutex_);
    stop_ = true;
    running_ = false;
  }
  return build_report(completed_before);
}

bool Scheduler::det_advance_clock() {
  std::chrono::steady_clock::time_point earliest{};
  bool found = false;
  {
    std::scoped_lock society_lock(society_mutex_);
    for (auto& [pid, p] : society_) {
      std::scoped_lock state_lock(p->state_mutex);
      if (p->state != RunState::Parked || !p->has_deadline) continue;
      if (!found || p->deadline < earliest) {
        earliest = p->deadline;
        found = true;
      }
    }
  }
  if (!found) return false;
  if (earliest > det_now_) det_now_ = earliest;
  expire_deadlines(det_now_);
  return true;
}

RunReport Scheduler::build_report(std::uint64_t completed_before) {
  RunReport report;
  report.completed = static_cast<std::size_t>(
      completed_.load(std::memory_order_relaxed) - completed_before);
  {
    std::scoped_lock lock(society_mutex_);
    // Workers are joined: states are stable, environments readable.
    std::vector<const Process*> parked;
    for (const auto& [pid, p] : society_) {
      std::scoped_lock state_lock(p->state_mutex);
      if (p->state != RunState::Parked) continue;
      ++report.still_parked;
      switch (p->park_reason) {
        case ParkReason::Consensus:
          ++report.parked_on_consensus;
          break;
        case ParkReason::Replication:
          ++report.parked_on_replication;
          break;
        default:
          ++report.parked_on_data;
          break;
      }
      parked.push_back(p.get());
    }
    // Render outside the per-process state locks: the wait-for diagnosis
    // peeks at *other* processes' states, and state mutexes must not nest.
    for (const Process* p : parked) {
      report.parked.push_back(p->label() + " (" +
                              park_reason_name(p->park_reason) + ")" +
                              explain_park_locked(*p));
    }
  }
  {
    std::scoped_lock lock(report_mutex_);
    report.errors = errors_;
    errors_.clear();
    report.timed_out = timed_out_;
    timed_out_.clear();
    report.killed = killed_;
    killed_.clear();
  }
  return report;
}

void Scheduler::worker_loop() {
  for (;;) {
    ProcessId pid;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stop requested and no work
      pid = ready_.front();
      ready_.pop_front();
    }
    dispatch_one(pid);
  }
}

void Scheduler::dispatch_one(ProcessId pid) {
  Process* p = begin_running(pid);
  if (p == nullptr) {
    work_finished();
    return;
  }

  // Teardown requests beat interpretation: a kill or an expired park
  // deadline retires the process on the worker that owns it.
  if (p->pending_kill.load(std::memory_order_acquire)) {
    retire(*p, RetireKind::Killed, p->label() + " killed");
    work_finished();
    return;
  }
  if (p->timed_out.exchange(false, std::memory_order_acq_rel)) {
    retire(*p, RetireKind::TimedOut, std::move(p->timeout_note));
    work_finished();
    return;
  }

  if (faults_ != nullptr) {
    switch (faults_->decide(FaultPoint::SchedulerDispatch)) {
      case FaultAction::Delay:
        // Stall the dispatch: the process is Running but not stepping,
        // so wakes aimed at it must buffer via pending_wake.
        faults_->delay();
        break;
      case FaultAction::SpuriousWake:
        wake_one_parked(pid);
        break;
      case FaultAction::Kill:
        retire(*p, RetireKind::Killed,
               p->label() + " killed (fault injection)");
        work_finished();
        return;
      default:
        break;
    }
  }

  StepOutcome outcome;
  try {
    outcome = run_process(*p);
  } catch (const std::exception& e) {
    // Crash-safe teardown: same path as kill(), so the exception cannot
    // leak the WaitSet subscription, wedge a consensus set on stale
    // offers, or strand a replication group.
    retire(*p, RetireKind::Errored, p->label() + ": " + e.what());
    work_finished();
    return;
  }

  // A kill that arrived during the quantum retires the process here
  // instead of letting it re-park or requeue.
  if (outcome != StepOutcome::Done &&
      p->pending_kill.load(std::memory_order_acquire)) {
    retire(*p, RetireKind::Killed, p->label() + " killed");
    work_finished();
    return;
  }

  switch (outcome) {
    case StepOutcome::Continue:  // run_process never returns Continue
    case StepOutcome::Yield:
      {
        std::scoped_lock state_lock(p->state_mutex);
        p->state = RunState::Ready;
      }
      requeue(pid);
      break;
    case StepOutcome::Parked:
      // The interpreter stored the reason in p->park_reason before
      // returning; finalize_park re-checks pending wakes.
      if (finalize_park(*p, p->park_reason)) {
        if (trace_ != nullptr && trace_->enabled()) {
          trace_->record(TraceKind::Park, pid, p->def.name);
        }
        notify_consensus();
        work_finished();
      } else {
        requeue(pid);
      }
      break;
    case StepOutcome::Done:
      complete(*p);
      work_finished();
      break;
  }
}

// ------------------------------------------------------------ interpreter

Scheduler::StepOutcome Scheduler::run_process(Process& p) {
  for (std::size_t steps = 0; steps < options_.quantum; ++steps) {
    if (p.frames.empty()) return StepOutcome::Done;
    // Yield promptly to a pending kill; the worker loop retires us.
    if (p.pending_kill.load(std::memory_order_acquire)) {
      return StepOutcome::Yield;
    }
    if (p.group != nullptr && (p.group->done.load(std::memory_order_acquire) ||
                               p.group->abort.load(std::memory_order_acquire))) {
      p.frames.clear();
      return StepOutcome::Done;
    }

    Frame& f = p.frames.back();
    StepOutcome out = StepOutcome::Continue;
    switch (f.type) {
      case Frame::Type::Seq: {
        if (f.pc >= f.stmt->children.size()) {
          p.frames.pop_back();
        } else {
          const Statement* next = f.stmt->children[f.pc].get();
          ++f.pc;
          push_statement(p, next);
        }
        break;
      }
      case Frame::Type::Txn:
        out = do_transaction(p, f.stmt->txn);
        break;
      case Frame::Type::Select:
        out = do_selection(p, f);
        break;
      case Frame::Type::Repeat:
        if (f.pc == 1) {
          f.pc = 0;  // branch body finished; reselect
        } else {
          out = do_selection(p, f);
        }
        break;
      case Frame::Type::BranchBody:
        // BranchBody frames are plain sequence frames in practice; this
        // type exists for diagnostics only.
        p.frames.pop_back();
        break;
      case Frame::Type::Replicate:
        out = do_replicate_parent(p, f);
        break;
      case Frame::Type::Sweep:
        out = do_sweep(p, f);
        break;
    }
    if (out != StepOutcome::Continue) return out;
  }
  return StepOutcome::Yield;
}

void Scheduler::sim_note_txn(const Transaction& txn, Env& env) {
  if (!sim_recording_) return;
  txn.query.clear_locals(env);
  const bool effectful = !txn.is_read_only();
  for (const KeySpec& spec : txn.query.read_set(env, engine_.functions())) {
    if (spec.kind == KeySpec::Kind::Arity) {
      sim_step_.reads_all = true;
      // An effectful transaction may retract from any bucket it matches.
      if (effectful) sim_step_.writes_all = true;
    } else {
      sim_step_.reads.push_back(spec.key);
      if (effectful) sim_step_.writes.push_back(spec.key);
    }
  }
  if (effectful) {
    const Transaction::WriteSet ws = txn.write_set(env, engine_.functions());
    if (ws.unknown) sim_step_.writes_all = true;
    for (const IndexKey& k : ws.exact) sim_step_.writes.push_back(k);
  }
}

TxnResult Scheduler::execute_engine(Process& p, const Transaction& txn) {
  sim_note_txn(txn, p.env);
  TxnResult r = engine_.execute(txn, p.env, p.pid, p.view_ptr());
  // An injected transient commit failure means the query succeeded but no
  // effects were applied — so no publish is coming and parking would hang
  // forever. Retry in place with exponential, jittered backoff; on
  // exhaustion the caller yields (requeue) rather than parks.
  for (std::size_t attempt = 0;
       r.injected_fault && attempt < options_.commit_retry_limit; ++attempt) {
    // The shared retry budget gates every in-place retry: under a retry
    // storm the bucket drains and the process yields back to the ready
    // queue (the caller's exhaustion path) instead of amplifying offered
    // load with hot backoff-retry cycles.
    if (overload_ != nullptr && !overload_->try_spend_retry()) break;
    commit_retries_.fetch_add(1, std::memory_order_relaxed);
    const unsigned shift = attempt < 6 ? static_cast<unsigned>(attempt) : 6u;
    const std::uint64_t base =
        static_cast<std::uint64_t>(options_.commit_backoff_us) << shift;
    const std::uint64_t jitter = faults_ != nullptr ? faults_->jitter_us(base) : 0;
    std::this_thread::sleep_for(std::chrono::microseconds(base + jitter));
    r = engine_.execute(txn, p.env, p.pid, p.view_ptr());
  }
  if (r.success) {
    ++p.txns_committed;
    // Successes refill the retry budget — goodput is what makes retries
    // affordable (Finagle-style ratio budget).
    if (overload_ != nullptr) overload_->deposit();
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->record(TraceKind::Commit, p.pid, txn.to_string());
    }
  }
  return r;
}

void Scheduler::ensure_subscription(Process& p, WaitSet::Interest interest,
                                    const Transaction* txn) {
  if (p.ticket != WaitSet::kInvalidTicket) return;
  const ProcessId pid = p.pid;
  p.interest = interest;  // diagnosis copy (wait-for reports)
  std::shared_ptr<IncrementalState> state;
  if (txn != nullptr && incremental_active()) {
    if (p.view_ptr() != nullptr && !p.view_ptr()->imports_everything()) {
      // View-scoped evaluation re-admits candidates through the window on
      // every attempt; a commit delta cannot answer admission, so these
      // processes stay on the full path.
      count_inc_fallback(IncFallbackReason::View);
    } else {
      state = make_incremental_state(txn->query, p.env, engine_.functions(),
                                     inc_);
      if (state == nullptr) count_inc_fallback(IncFallbackReason::Nonmonotone);
    }
  }
  p.inc_state = state;
  bool saturated = false;
  p.ticket = engine_.waits().subscribe(
      std::move(interest), [this, pid] { wake(pid); },
      overload_ != nullptr ? &saturated : nullptr, std::move(state));
  // A saturated bucket means this park joins a queue already past its
  // cap; finalize_park converts the hint into a forced short deadline so
  // the watchdog sheds the excess instead of letting the bucket grow.
  p.park_saturated = saturated;
}

void Scheduler::drop_subscription(Process& p) {
  if (p.ticket == WaitSet::kInvalidTicket) return;
  engine_.waits().unsubscribe(p.ticket);
  p.ticket = WaitSet::kInvalidTicket;
  p.interest = {};
  p.inc_state.reset();  // WaitSet ref is gone too — state frees here
  p.park_saturated = false;
}

bool Scheduler::incremental_active() const {
  if (inc_ == nullptr) return false;
  const IncrementalOptions& o = inc_->options();
  if (!o.enabled) return false;
  if (o.force) return true;
  // The always-full path is what the sim explorer, fault campaigns and
  // the serializability checker validate — keep them on it.
  if (deterministic() || faults_ != nullptr) return false;
  const HistoryRecorder* h = engine_.history();
  return h == nullptr || !h->enabled();
}

void Scheduler::count_inc_fallback(IncFallbackReason r) {
  inc_->count_fallback(r);
  obs::RuntimeMetrics* const m = obs_metrics();
  if (m == nullptr) return;
  switch (r) {
    case IncFallbackReason::Nonmonotone: m->inc_fallback_nonmonotone->add(); break;
    case IncFallbackReason::View: m->inc_fallback_view->add(); break;
    case IncFallbackReason::NoDelta: m->inc_fallback_no_delta->add(); break;
    case IncFallbackReason::Batch: m->inc_fallback_batch->add(); break;
    case IncFallbackReason::Capacity: m->inc_fallback_capacity->add(); break;
  }
}

Scheduler::IncDecision Scheduler::incremental_recheck(Process& p,
                                                      const Transaction& txn) {
  if (p.inc_state == nullptr) return IncDecision::None;
  IncrementalState::Pending pending = p.inc_state->take();
  if (pending.invalid) {
    count_inc_fallback(pending.reason);
    return IncDecision::Fallback;
  }
  if (pending.entries.empty()) {
    // The headline win: nothing relevant was asserted since the last
    // failed evaluation, so by monotonicity the query is provably still
    // unsatisfiable — park again without touching the dataspace.
    inc_->checks_empty.fetch_add(1, std::memory_order_relaxed);
    return IncDecision::StillParked;
  }
  inc_->checks_seeded.fetch_add(1, std::memory_order_relaxed);
  inc_->delta_entries_applied.fetch_add(pending.entries.size(),
                                        std::memory_order_relaxed);
  if (obs::RuntimeMetrics* const m = obs_metrics(); m != nullptr) {
    m->inc_delta_applied->add(pending.entries.size());
  }
  if (engine_.probe_seeded(txn, p.env, p.inc_state->specs(),
                           pending.entries)) {
    inc_->wakes_confirmed.fetch_add(1, std::memory_order_relaxed);
    return IncDecision::MaybeEnabled;
  }
  return IncDecision::StillParked;
}

ControlAction Scheduler::apply_actions(Process& p, const Transaction& txn,
                                       const TxnResult& result) {
  const bool exists = txn.query.quantifier == Quantifier::Exists;
  for (const QueryMatch& m : result.matches) {
    const Env& base = exists ? p.env : m.binding;
    for (const LetAction& let : txn.lets) {
      p.env[static_cast<std::size_t>(let.slot)] =
          let.value->eval(base, engine_.functions());
    }
    for (const SpawnAction& s : txn.spawns) {
      std::vector<Value> args;
      args.reserve(s.args.size());
      for (const ExprPtr& a : s.args) args.push_back(a->eval(base, engine_.functions()));
      spawn(s.process_type, std::move(args));
    }
  }
  return txn.control;
}

Scheduler::StepOutcome Scheduler::handle_exit(Process& p) {
  while (!p.frames.empty()) {
    if (p.frames.back().type == Frame::Type::Sweep) {
      // `exit` inside a replicated sequence terminates the replication
      // construct (the analogue of "terminates ... the repetition", §2.3).
      ReplicationGroup* g = p.group.get();
      g->done.store(true, std::memory_order_release);
      wake_group(*g, p.pid);
      p.frames.clear();
      return StepOutcome::Done;
    }
    const Frame::Type t = p.frames.back().type;
    p.frames.pop_back();
    if (t == Frame::Type::Repeat) return StepOutcome::Continue;
  }
  return StepOutcome::Done;
}

Scheduler::StepOutcome Scheduler::handle_abort(Process& p) {
  if (p.group != nullptr) {
    p.group->abort.store(true, std::memory_order_release);
    p.group->done.store(true, std::memory_order_release);
    wake_group(*p.group, p.pid);
  }
  p.frames.clear();
  return StepOutcome::Done;
}

Scheduler::StepOutcome Scheduler::do_transaction(Process& p,
                                                 const Transaction& txn) {
  switch (txn.type) {
    case TxnType::Immediate: {
      const TxnResult r = execute_engine(p, txn);
      if (r.injected_fault) {
        // Retries exhausted on an injected transient failure. The query
        // succeeded, so treating this as the skip case would wrongly drop
        // the statement — keep the frame and yield for another attempt.
        return StepOutcome::Yield;
      }
      p.frames.pop_back();
      if (r.success) {
        const ControlAction c = apply_actions(p, txn, r);
        if (c == ControlAction::Exit) return handle_exit(p);
        if (c == ControlAction::Abort) return handle_abort(p);
      }
      // Failure of a standalone immediate transaction acts as skip.
      return StepOutcome::Continue;
    }
    case TxnType::Delayed: {
      // A live ticket means this is a re-check after a park: the first
      // attempt already failed, so probe under read locks before paying
      // for the full (exclusively locked) execute — a parked society
      // re-checking disabled guards then contends only on shared locks.
      // The subscription stays active throughout, so a commit racing the
      // probe still wakes us (no lost wakeup). Read-only transactions
      // skip the probe: their execute() is already the shared-lock path.
      const bool recheck = p.ticket != WaitSet::kInvalidTicket;
      // Delta-driven recheck (when armed): consult the retained state
      // BEFORE the probe. StillParked skips all evaluation; MaybeEnabled
      // skips the probe (the seeded check already found a witness) and
      // goes straight to execute, which re-verifies under full locks.
      const IncDecision inc =
          recheck ? incremental_recheck(p, txn) : IncDecision::None;
      ensure_subscription(p, engine_.interest_of(txn, p.env), &txn);
      sim_note_txn(txn, p.env);
      if (inc == IncDecision::StillParked) {
        p.park_reason = ParkReason::DelayedTxn;
        p.park_timeout_ms = txn.timeout_ms;
        return StepOutcome::Parked;
      }
      if (recheck && inc != IncDecision::MaybeEnabled && !txn.is_read_only() &&
          !engine_.probe(txn, p.env, p.view_ptr())) {
        p.park_reason = ParkReason::DelayedTxn;
        p.park_timeout_ms = txn.timeout_ms;
        return StepOutcome::Parked;
      }
      const TxnResult r = execute_engine(p, txn);
      if (!r.success) {
        if (r.injected_fault) {
          // No publish is coming for an injected failure — parking would
          // hang. Yield and retry from the ready queue instead.
          return StepOutcome::Yield;
        }
        p.park_reason = ParkReason::DelayedTxn;
        p.park_timeout_ms = txn.timeout_ms;
        return StepOutcome::Parked;
      }
      drop_subscription(p);
      p.frames.pop_back();
      const ControlAction c = apply_actions(p, txn, r);
      if (c == ControlAction::Exit) return handle_exit(p);
      if (c == ControlAction::Abort) return handle_abort(p);
      return StepOutcome::Continue;
    }
    case TxnType::Consensus: {
      if (p.consensus_result.has_value()) {
        const ConsensusResult res = std::move(*p.consensus_result);
        p.consensus_result.reset();
        drop_subscription(p);
        p.frames.pop_back();
        const ControlAction c = apply_actions(p, txn, res.result);
        if (c == ControlAction::Exit) return handle_exit(p);
        if (c == ControlAction::Abort) return handle_abort(p);
        return StepOutcome::Continue;
      }
      ensure_subscription(p, engine_.interest_of(txn, p.env));
      sim_note_txn(txn, p.env);
      p.offers = {ConsensusOffer{&txn, -1}};
      p.park_reason = ParkReason::Consensus;
      p.park_timeout_ms = txn.timeout_ms;
      return StepOutcome::Parked;
    }
  }
  return StepOutcome::Continue;
}

Scheduler::StepOutcome Scheduler::do_selection(Process& p, Frame& f) {
  const std::vector<Branch>& branches = f.stmt->branches;
  const bool is_repeat = f.type == Frame::Type::Repeat;

  // Commit a chosen branch: apply guard actions, then run its body.
  auto choose = [&](std::size_t idx, const TxnResult& r) -> StepOutcome {
    drop_subscription(p);
    p.offers.clear();
    const Branch& br = branches[idx];
    const ControlAction c = apply_actions(p, br.guard, r);
    if (c == ControlAction::Exit) return handle_exit(p);
    if (c == ControlAction::Abort) return handle_abort(p);
    if (is_repeat) {
      f.pc = 1;  // reselect when the body finishes
      if (br.body) {
        push_statement(p, br.body.get());
      } else {
        f.pc = 0;  // guard-only branch: reselect immediately
      }
    } else {
      p.frames.pop_back();
      if (br.body) push_statement(p, br.body.get());
    }
    return StepOutcome::Continue;
  };

  // 1. A consensus fired for one of our offers while parked here.
  if (p.consensus_result.has_value()) {
    const ConsensusResult res = std::move(*p.consensus_result);
    p.consensus_result.reset();
    return choose(static_cast<std::size_t>(res.branch), res.result);
  }

  // 2. Subscribe before attempting if any guard can block — the wakeup
  //    discipline requires subscription before evaluation.
  bool has_blocking = false;
  for (const Branch& b : branches) {
    if (b.guard.type != TxnType::Immediate) {
      has_blocking = true;
      break;
    }
  }
  if (has_blocking && p.ticket == WaitSet::kInvalidTicket) {
    WaitSet::Interest interest;
    for (const Branch& b : branches) {
      WaitSet::Interest one = engine_.interest_of(b.guard, p.env);
      interest.keys.insert(interest.keys.end(), one.keys.begin(), one.keys.end());
      interest.arities.insert(interest.arities.end(), one.arities.begin(),
                              one.arities.end());
    }
    ensure_subscription(p, std::move(interest));
  }

  // 3. Try every non-consensus guard once, in order.
  bool saw_injected = false;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (branches[i].guard.type == TxnType::Consensus) continue;
    const TxnResult r = execute_engine(p, branches[i].guard);
    if (r.success) return choose(i, r);
    if (r.injected_fault) saw_injected = true;
  }

  // An injected transient failure hid a branch that may well be enabled:
  // neither skip (could wrongly end a repetition) nor park (no wakeup is
  // coming) is safe — yield and re-run the whole selection.
  if (saw_injected) return StepOutcome::Yield;

  // 4. Nothing committed. Fail (skip / end repetition) or park.
  if (!has_blocking) {
    drop_subscription(p);
    p.frames.pop_back();  // Select: skip. Repeat: loop terminates.
    return StepOutcome::Continue;
  }
  p.offers.clear();
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (branches[i].guard.type == TxnType::Consensus) {
      sim_note_txn(branches[i].guard, p.env);
      p.offers.push_back(ConsensusOffer{&branches[i].guard, static_cast<int>(i)});
    }
  }
  p.park_reason =
      p.offers.empty() ? ParkReason::Selection : ParkReason::Consensus;
  // Deadline for the park: the smallest explicit per-guard timeout wins;
  // "never" only if every blocking guard says never.
  {
    std::int64_t staged = 0;
    bool any_pos = false;
    bool any_default = false;
    for (const Branch& b : branches) {
      if (b.guard.type == TxnType::Immediate) continue;
      const std::int64_t t = b.guard.timeout_ms;
      if (t > 0) {
        staged = any_pos ? std::min(staged, t) : t;
        any_pos = true;
      } else if (t == 0) {
        any_default = true;
      }
    }
    if (any_pos) {
      p.park_timeout_ms = staged;
    } else {
      p.park_timeout_ms = any_default ? 0 : -1;
    }
  }
  return StepOutcome::Parked;
}

Scheduler::StepOutcome Scheduler::do_replicate_parent(Process& p, Frame& f) {
  if (f.pc == 0) {
    if (f.stmt->branches.empty()) {
      p.frames.pop_back();
      return StepOutcome::Continue;
    }
    auto group = std::make_shared<ReplicationGroup>();
    group->stmt = f.stmt;
    group->parent = p.pid;
    const int width = static_cast<int>(options_.replication_width);
    group->width.store(width, std::memory_order_relaxed);
    group->active.store(width, std::memory_order_relaxed);
    p.owned_group = group;
    f.pc = 1;
    std::vector<ProcessId> members;
    members.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      members.push_back(spawn_replicant(p, group));
    }
    group->members = members;  // fixed before any replicant runs? see below
    // Replicants were inserted into the society but not yet queued; queue
    // them only after `members` is final so wake_group sees all pids.
    for (ProcessId pid : members) enqueue_new(pid);
    p.park_reason = ParkReason::Replication;
    return StepOutcome::Parked;
  }
  // Resumed: the group must be done (wakes only come from the last
  // replicant); tolerate spurious wakes by re-parking. active == 0 with
  // done unset means every member was torn down abnormally — there is no
  // last parker left to set the flag, so the construct is over.
  auto group = p.owned_group;
  const bool finished =
      group && (group->done.load(std::memory_order_acquire) ||
                group->active.load(std::memory_order_acquire) == 0);
  if (!finished) {
    p.park_reason = ParkReason::Replication;
    return StepOutcome::Parked;
  }
  const bool aborted = group->abort.load(std::memory_order_acquire);
  p.owned_group.reset();
  p.frames.pop_back();
  if (aborted) return handle_abort(p);
  return StepOutcome::Continue;
}

int Scheduler::try_guards(Process& p, const std::vector<Branch>& branches,
                          TxnResult& result, bool& saw_injected) {
  for (std::size_t i = 0; i < branches.size(); ++i) {
    // Inside replication every guard is attempted eagerly; the construct
    // itself provides the retry-until-enabled behavior, so the '=>' tag
    // adds nothing and consensus guards are not meaningful here (§2.3's
    // examples use '->' guards).
    //
    // Most sweep attempts hit disabled guards, so evaluate each guard
    // first under read locks (probe); only a guard that looks enabled
    // pays for the exclusively locked execute, which revalidates.
    // Read-only guards go straight to execute — it is already the
    // shared-lock path.
    const Transaction& guard = branches[i].guard;
    sim_note_txn(guard, p.env);
    if (!guard.is_read_only() && !engine_.probe(guard, p.env, p.view_ptr())) {
      continue;
    }
    result = execute_engine(p, guard);
    if (result.success) return static_cast<int>(i);
    if (result.injected_fault) saw_injected = true;
  }
  return -1;
}

Scheduler::StepOutcome Scheduler::do_sweep(Process& p, Frame& f) {
  ReplicationGroup* group = p.group.get();
  const std::vector<Branch>& branches = f.stmt->branches;

  {
    WaitSet::Interest interest;
    for (const Branch& b : branches) {
      WaitSet::Interest one = engine_.interest_of(b.guard, p.env);
      interest.keys.insert(interest.keys.end(), one.keys.begin(), one.keys.end());
      interest.arities.insert(interest.arities.end(), one.arities.begin(),
                              one.arities.end());
    }
    ensure_subscription(p, std::move(interest));
  }

  TxnResult r;
  bool saw_injected = false;
  const int idx = try_guards(p, branches, r, saw_injected);
  if (idx >= 0) {
    const Branch& br = branches[static_cast<std::size_t>(idx)];
    const ControlAction c = apply_actions(p, br.guard, r);
    if (c == ControlAction::Exit) return handle_exit(p);
    if (c == ControlAction::Abort) return handle_abort(p);
    if (br.body) push_statement(p, br.body.get());
    return StepOutcome::Continue;
  }

  // An injected failure masked a guard that looked enabled: do not count
  // this replicant as parked (it could wrongly satisfy the termination
  // check) — retry the sweep after a yield.
  if (saw_injected) return StepOutcome::Yield;

  // Every guard failed. Count ourselves parked; the last parker verifies
  // global disablement under total exclusion before declaring the
  // construct finished.
  p.counted_parked = true;
  const int parked_now = group->parked.fetch_add(1, std::memory_order_acq_rel) + 1;
  // >= because an abnormal teardown may shrink width below the parked
  // count while a sweep is in flight.
  if (parked_now >= group->width.load(std::memory_order_acquire)) {
    // The termination check reads under total exclusion — for the
    // explorer's dependence relation that is a read of everything.
    if (sim_recording_) sim_step_.reads_all = true;
    bool enabled = false;
    engine_.exclusive([&]() -> std::vector<IndexKey> {
      for (const Branch& b : branches) {
        QueryOutcome probe;
        if (p.view_ptr() != nullptr && !p.view_ptr()->imports_everything()) {
          const WindowSource window(engine_.space(), *p.view_ptr(), p.env,
                                    engine_.functions());
          probe = b.guard.query.evaluate(window, p.env, engine_.functions());
        } else {
          const DataspaceSource source(engine_.space());
          probe = b.guard.query.evaluate(source, p.env, engine_.functions());
        }
        if (probe.success) {
          enabled = true;
          break;
        }
      }
      return {};
    });
    if (enabled) {
      group->parked.fetch_sub(1, std::memory_order_acq_rel);
      p.counted_parked = false;
      return StepOutcome::Continue;  // retry the sweep with effects
    }
    group->done.store(true, std::memory_order_release);
    group->parked.fetch_sub(1, std::memory_order_acq_rel);
    p.counted_parked = false;
    wake_group(*group, p.pid);
    p.frames.clear();
    return StepOutcome::Done;
  }
  p.park_reason = ParkReason::Replication;
  return StepOutcome::Parked;
}

void Scheduler::wake_group(ReplicationGroup& group, ProcessId except) {
  for (ProcessId pid : group.members) {
    if (pid != except) wake(pid);
  }
}

}  // namespace sdl
