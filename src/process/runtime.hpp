// The SDL runtime: one object wiring together the dataspace, an engine,
// the wait set, the scheduler, the consensus manager and tracing — the
// "language implementation" the paper's §3.1 alludes to when it says the
// replication style "requires a sophisticated language implementation".
//
// Typical host-program use:
//
//   Runtime rt;
//   rt.define(sum3_def());               // process definitions (§2.4)
//   rt.seed(tup(1, 10));                 // initial dataspace
//   rt.seed(tup(2, 32));
//   rt.spawn("Sum3", {});                // initial process society
//   RunReport report = rt.run();         // drive to quiescence
//   rt.space().snapshot();               // inspect results
#pragma once

#include <memory>

#include "check/check.hpp"
#include "consensus/consensus.hpp"
#include "obs/metrics.hpp"
#include "persist/persist.hpp"
#include "process/scheduler.hpp"
#include "repl/repl.hpp"

namespace sdl {

enum class EngineKind { GlobalLock, Sharded };

struct RuntimeOptions {
  std::size_t shards = 64;
  EngineKind engine = EngineKind::Sharded;
  WaitSet::WakePolicy wake_policy = WaitSet::WakePolicy::Targeted;
  SchedulerOptions scheduler;
  bool tracing = false;
  std::size_t trace_capacity = 65536;
  /// Durability (WAL + snapshots + crash recovery). Off unless
  /// persist.dir is set; when on, the constructor recovers any committed
  /// state already in the directory into the dataspace before the first
  /// process runs, and every subsequent commit is logged. Process
  /// continuations are NOT durable — only the dataspace is shared state
  /// (§2.1); hosts re-spawn the society after recovery.
  persist::PersistOptions persist;
  /// Overload protection (admission control, retry budgets, circuit
  /// breaker, backpressure caps). Off by default — the control layer is
  /// only instantiated when any limit is set (overload.enabled()), so a
  /// default-constructed Runtime pays nothing, and deterministic-sim runs
  /// stay bit-identical unless a test arms it deliberately.
  control::OverloadOptions overload;
  /// Delta-driven wakeup evaluation for parked delayed transactions
  /// (src/query/incremental.hpp). Off by default; even when enabled the
  /// scheduler keeps it off under deterministic sim, armed faults, or an
  /// armed history recorder unless `incremental.force` overrides.
  IncrementalOptions incremental;
  /// Leader/follower replication (src/repl). Off unless repl.role is set.
  /// A Leader requires persist.dir (the WAL is the replication stream) and
  /// streams durable records to attached followers; a Follower applies the
  /// leader's stream, refuses local writes until promoted, and serves
  /// eventually-consistent local reads with an applied-seq watermark.
  repl::ReplOptions repl;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Host functions callable from guards and fields (register before
  /// defining processes that use them).
  [[nodiscard]] FunctionRegistry& functions() { return functions_; }

  /// Registers a process definition; finalizes it if needed.
  const ProcessDef& define(ProcessDef def) { return scheduler_->define(std::move(def)); }

  /// Asserts a tuple as the environment (process id 0) — atomically, with
  /// wakeups, so seeding may also happen between run() calls.
  TupleId seed(Tuple t);

  /// Creates a process; it runs at the next run().
  ProcessId spawn(const std::string& def_name, std::vector<Value> args = {}) {
    return scheduler_->spawn(def_name, std::move(args));
  }

  /// Drives the society to quiescence. When the SDL_OBS flag is on, the
  /// report's `metrics` field carries the registry's human summary.
  RunReport run();

  /// Creates (or returns the existing) deterministic fault injector and
  /// threads it through every injection point — engine commit, WaitSet
  /// publish/wake delivery, scheduler dispatch, consensus claim/commit.
  /// Arm points on the returned injector; call disable_faults() to detach
  /// (the runtime then pays only a null-pointer branch per crossing).
  FaultInjector& enable_faults(std::uint64_t seed);
  void disable_faults();
  /// Null when faults are disabled.
  [[nodiscard]] FaultInjector* faults() { return faults_.get(); }

  /// Starts commit-history recording for the serializability checker: the
  /// recorder snapshots the current dataspace as the initial state and
  /// every subsequent commit (engine and consensus) is logged with its
  /// read/retract/assert instance sets. Call while quiescent.
  HistoryRecorder& enable_history();
  void disable_history();
  /// Null when history recording is disabled.
  [[nodiscard]] HistoryRecorder* history() { return history_.get(); }
  /// Replays the recorded history against the reference model and the
  /// current dataspace. Call while quiescent (after run()).
  [[nodiscard]] CheckReport check_history() const;

  /// Executes one transaction on behalf of the environment (blocking for
  /// delayed transactions) — the host-program escape hatch.
  ///
  /// Admission-controlled when the overload layer is armed with an
  /// in-flight limit: past the limit the call returns immediately with
  /// `TxnResult::shed` set and `retry_after_us` carrying a load-scaled
  /// backoff hint — the RetryAfter outcome. Nothing is evaluated or
  /// applied for a shed transaction; the caller resubmits after backing
  /// off (or drops the request, its deadline permitting).
  TxnResult execute(const Transaction& txn, Env& env,
                    ProcessId owner = kEnvironmentProcess);

  /// Null when overload protection is off (no limit set in
  /// options.overload). Shed/throttle/breaker counters live here and are
  /// mirrored into metrics() as sdl_admission_*/sdl_retry_*/sdl_breaker_*
  /// gauges.
  [[nodiscard]] control::OverloadControl* overload() {
    return overload_.get();
  }

  /// Null when incremental wakeup evaluation is off
  /// (options.incremental.enabled false). Exact check/fallback/state
  /// counters live here and are mirrored into metrics() as sdl_inc_*
  /// gauges.
  [[nodiscard]] IncrementalControl* incremental() { return inc_.get(); }

  /// One-struct summary of runtime counters — what an operator dashboard
  /// (or the paper's envisioned environment) would display after a run.
  struct Stats {
    std::size_t tuples_resident = 0;
    std::uint64_t tuples_asserted = 0;
    std::uint64_t tuples_retracted = 0;
    std::uint64_t txn_attempts = 0;
    std::uint64_t txn_commits = 0;
    std::uint64_t txn_failures = 0;
    std::uint64_t wakes_delivered = 0;
    std::uint64_t processes_spawned = 0;
    std::uint64_t processes_completed = 0;
    std::uint64_t consensus_sweeps = 0;
    std::uint64_t consensus_fires = 0;

    /// Multi-line human-readable rendering.
    [[nodiscard]] std::string to_string() const;
  };
  [[nodiscard]] Stats stats() const;

  /// The observability registry (tentpole of this PR): always wired, but
  /// instruments only record while the SDL_OBS runtime flag is on
  /// (obs::enabled() / obs::set_enabled()). Pre-existing stat pockets
  /// (engine, waits, scheduler, consensus, persist, space) are exposed as
  /// gauges, so metrics().to_prometheus() / to_json() / summary() render
  /// one unified export.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_registry_; }

  /// Null when durability is off (options.persist.dir empty). Use for
  /// explicit snapshots (persist()->snapshot_now via snapshot()), stats,
  /// and what recovery reconstructed at startup.
  [[nodiscard]] persist::PersistManager* persist() { return persist_mgr_.get(); }
  /// Explicit snapshot barrier (no-op returning false when durability is
  /// off). True when the snapshot became durable.
  bool snapshot();

  /// Null unless options.repl.role selected that side. The leader accepts
  /// followers (repl_leader()->add_follower for loopback, listen_port for
  /// TCP); the follower exposes the applied watermark and attach().
  [[nodiscard]] repl::ReplLeader* repl_leader() { return repl_leader_.get(); }
  [[nodiscard]] repl::ReplFollower* repl_follower() {
    return repl_follower_.get();
  }

  /// Result of promote_to_leader(). `fence` is the last contiguously
  /// applied leader sequence (0 when this node is not a follower);
  /// `wal_rotated` reports whether the epoch-boundary snapshot barrier
  /// actually moved the WAL onto a fresh segment. A false rotation does
  /// NOT void the promotion — the node is writable and its old WAL keeps
  /// it recoverable — but callers that rely on the new epoch living on
  /// its own segment (e.g. before truncating old segments) must check it.
  struct Promotion {
    std::uint64_t fence = 0;
    bool wal_rotated = false;
  };

  /// Failover: promotes this FOLLOWER to a writable leader. Fences at the
  /// last contiguously applied record, rotates the local WAL onto a fresh
  /// segment via an immediate snapshot barrier (the new leader epoch
  /// starts on its own segment), and lifts the write gate.
  Promotion promote_to_leader();

  [[nodiscard]] Dataspace& space() { return space_; }
  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] WaitSet& waits() { return waits_; }
  [[nodiscard]] Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] ConsensusManager& consensus() { return *consensus_; }
  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const RuntimeOptions& options() const { return options_; }

 private:
  /// Registers the legacy stat-pocket gauges with metrics_registry_.
  void register_gauges();
  /// Registers the sdl_repl_* gauges (called once repl components exist).
  void register_repl_gauges();

  RuntimeOptions options_;
  FunctionRegistry functions_;
  // Declared before the components that hold RuntimeMetrics pointers, so
  // the instruments outlive every hot path that might still flush into
  // them during teardown.
  obs::MetricsRegistry metrics_registry_;
  obs::RuntimeMetrics metrics_{metrics_registry_};
  // Declared before waits_/engine_/scheduler_/persist_mgr_, which hold raw
  // pointers into it: the control block must outlive every component that
  // might consult it during teardown.
  std::unique_ptr<control::OverloadControl> overload_;
  // Declared before waits_/scheduler_: WaitSet entries hold shared
  // IncrementalStates that return their byte accounting to this control
  // block on destruction, so it must outlive them.
  std::unique_ptr<IncrementalControl> inc_;
  Dataspace space_;
  WaitSet waits_;
  TraceRecorder trace_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<ConsensusManager> consensus_;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<HistoryRecorder> history_;
  std::unique_ptr<persist::PersistManager> persist_mgr_;
  // Declared after persist_mgr_: the leader registers a durable listener
  // with the WAL and must detach it (its destructor does) before the
  // PersistManager dies — reverse destruction order guarantees that.
  std::unique_ptr<repl::ReplLeader> repl_leader_;
  std::unique_ptr<repl::ReplFollower> repl_follower_;
};

}  // namespace sdl
