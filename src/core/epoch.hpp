// Epoch-based reclamation (EBR) — the memory-safety layer under the
// lock-free optimistic read path (ISSUE 6).
//
// Optimistic readers traverse the dataspace's bucket chains without taking
// any shard lock, so a retracted tuple's node cannot be freed the moment it
// is unlinked: a reader that loaded a pointer to it microseconds ago may
// still be dereferencing it. Instead, writers RETIRE unlinked nodes; a
// retired node is freed only after a GRACE PERIOD — two global epoch
// advances — has proven that every thread pinned at unlink time has since
// passed through a quiescent (unpinned) state.
//
// Protocol (classic 3-epoch EBR, crossbeam/Fraser style):
//   * Each participating thread owns a SLOT holding its local epoch, or
//     kInactive when not inside a critical section.
//   * Guard (RAII) pins the thread: local epoch := global epoch. All
//     unlocked traversal — and every writer mutation that unlinks nodes —
//     happens inside a Guard.
//   * retire(p, deleter) stamps p with the current global epoch e and
//     queues it; p is freed once the global epoch reaches e + 2.
//   * The global epoch advances from e to e+1 only when every pinned slot
//     has reached e — so an advance is a proof that no thread still holds
//     pointers obtained under epoch e-1, making epoch-(e-1) garbage safe.
//
// Why writers pin too: the advance e-1 → e scans slots AFTER the unlinking
// writer unpins, and a reader that pins at e reads the global epoch the
// advance published. That store–load chain (all seq_cst) is what makes the
// writer's unlink happen-before the reader's traversal, so the reader
// cannot load a pointer to epoch-(e-1) garbage. Without the writer's pin
// the chain has a hole and a 2-epoch grace period is NOT sufficient.
//
// Costs: pinning is one seq_cst store + one seq_cst load (uncontended,
// thread-local cache line); retiring is a thread-local vector push.
// Advancement is amortized: each thread attempts it every
// kCollectPeriod retires, and collects its own garbage afterwards.
//
// Threads: slots are claimed on first use and recycled on thread exit
// (pending retirees migrate to a global orphan list so nothing leaks).
// The registry is append-only, so slot scans need no lock.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sdl::epoch {

/// RAII pin: the calling thread is inside an epoch-protected critical
/// section for the Guard's lifetime. Pointers loaded from an epoch-managed
/// structure are safe to dereference only while a Guard is alive. Cheap;
/// re-entrant (nested Guards share the outer pin).
class Guard {
 public:
  Guard();
  ~Guard();
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

/// Defers `deleter(p)` until every thread pinned at call time has
/// unpinned. May be called with or without a Guard held (unlinking writers
/// hold one; see file comment). `deleter` must not touch anything that can
/// die before the process does — it runs at an arbitrary later point, on
/// an arbitrary thread (whichever one collects), possibly after the
/// structure `p` came from is gone.
void retire(void* p, void (*deleter)(void*));

/// Number of retired-but-not-yet-freed objects (approximate; the
/// observability layer exports it as the reclamation-backlog gauge).
[[nodiscard]] std::size_t backlog();

/// Best-effort drain: repeatedly advance the epoch and collect until no
/// progress is possible (a concurrently pinned thread stops it). With all
/// threads quiescent — scheduler teardown, test seams — this frees every
/// retired object, including orphans from exited threads. Returns the
/// number of objects freed.
std::size_t drain();

/// The current global epoch (tests/diagnostics).
[[nodiscard]] std::uint64_t current_epoch();

/// True while the calling thread holds at least one Guard (assertions).
[[nodiscard]] bool pinned();

}  // namespace sdl::epoch
