// The SDL value domain V (§2.1): the scalar values tuple fields may hold.
//
// The paper's domain is "atoms and integers"; we extend it with booleans,
// doubles and strings, which the examples use implicitly (thresholds,
// property values) and which cost nothing to support.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>

#include "core/atom.hpp"

namespace sdl {

/// A single field value. `Nil` (monostate) is the "absent" value used by
/// default-constructed Values; it never results from evaluating an SDL
/// expression and never appears in an asserted tuple.
class Value {
 public:
  using Variant =
      std::variant<std::monostate, bool, std::int64_t, double, Atom, std::string>;

  /// Discriminator, in the canonical cross-type ordering used by
  /// operator< (Nil < Bool < Int < Double < Atom < String).
  enum class Kind { Nil = 0, Bool, Int, Double, Atom, String };

  Value() = default;
  Value(bool b) : v_(b) {}                                    // NOLINT(google-explicit-constructor)
  Value(std::int64_t i) : v_(i) {}                            // NOLINT
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}          // NOLINT
  Value(double d) : v_(d) {}                                  // NOLINT
  Value(Atom a) : v_(a) {}                                    // NOLINT
  Value(std::string s) : v_(std::move(s)) {}                  // NOLINT
  Value(const char* s) : v_(std::string(s)) {}                // NOLINT

  [[nodiscard]] Kind kind() const { return static_cast<Kind>(v_.index()); }
  [[nodiscard]] bool is_nil() const { return kind() == Kind::Nil; }
  [[nodiscard]] bool is_bool() const { return kind() == Kind::Bool; }
  [[nodiscard]] bool is_int() const { return kind() == Kind::Int; }
  [[nodiscard]] bool is_double() const { return kind() == Kind::Double; }
  [[nodiscard]] bool is_atom() const { return kind() == Kind::Atom; }
  [[nodiscard]] bool is_string() const { return kind() == Kind::String; }
  /// True for Int or Double.
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }

  /// Checked accessors: throw std::bad_variant_access on kind mismatch.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] double as_double() const { return std::get<double>(v_); }
  [[nodiscard]] Atom as_atom() const { return std::get<Atom>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }

  /// Numeric value as double (Int is widened); throws if not a number.
  [[nodiscard]] double as_number() const;

  /// SDL truthiness: Bool is itself; everything else throws — SDL guards
  /// are typed and a non-boolean guard is a programming error.
  [[nodiscard]] bool truthy() const;

  /// Structural equality. Int 3 and Double 3.0 compare *equal* under
  /// numeric comparison in guards, but are distinct tuple-field values
  /// here (content addressing is exact).
  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order: by Kind first, then value. Used by canonicalization and
  /// deterministic test output — not by SDL guard comparisons, which use
  /// numeric_compare below.
  friend bool operator<(const Value& a, const Value& b);

  /// Renders the value in SDL literal syntax (atoms bare, strings quoted).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t hash() const;

  /// Numeric three-way comparison for guards: Int/Double compare by value
  /// (3 == 3.0); atoms compare lexicographically by spelling; strings
  /// lexicographically; bools false<true. Mixed non-numeric kinds throw
  /// std::invalid_argument — SDL guards do not order across kinds.
  [[nodiscard]] static int numeric_compare(const Value& a, const Value& b);

  /// numeric_compare without the exception: returns false (out untouched)
  /// where numeric_compare would throw. The query VM's exception-free
  /// comparison path; numeric_compare delegates here so the two can never
  /// disagree.
  [[nodiscard]] static bool numeric_compare_opt(const Value& a, const Value& b,
                                                int& out) noexcept;

  /// Convenience: intern an atom value.
  static Value atom(std::string_view spelling) { return Value(Atom::intern(spelling)); }

 private:
  Variant v_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace sdl

template <>
struct std::hash<sdl::Value> {
  std::size_t operator()(const sdl::Value& v) const noexcept { return v.hash(); }
};
