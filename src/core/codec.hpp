// Binary codec for the durable formats (WAL records, snapshots).
//
// Atoms are interned per process, so their 32-bit ids are meaningless
// across a restart — every atom is serialized by SPELLING and re-interned
// on decode. Ints use zigzag varints (dataspace values cluster near zero),
// doubles their IEEE bit pattern, and all fixed-width fields are
// little-endian regardless of host order, so a WAL written on one machine
// replays on another.
//
// Decoding is failure-tolerant by design: a Reader never throws and never
// reads past its window — any malformed or truncated input flips `ok` and
// every subsequent getter returns a default. The persistence layer's
// truncate-at-first-corrupt recovery policy leans on exactly this.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/tuple.hpp"

namespace sdl::codec {

// ---- writers (append to a std::string buffer) ----

void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
/// LEB128; at most 10 bytes.
void put_varint(std::string& out, std::uint64_t v);
/// Zigzag + varint for signed values.
void put_svarint(std::string& out, std::int64_t v);
/// varint length + raw bytes.
void put_string(std::string& out, std::string_view s);
void put_value(std::string& out, const Value& v);
void put_tuple(std::string& out, const Tuple& t);

// ---- reader ----

/// Cursor over an immutable byte window. All getters are total: on
/// malformed input they set ok=false and return a zero value; callers
/// check ok once after a logical unit instead of per field.
class Reader {
 public:
  Reader(const char* data, std::size_t size)
      : p_(reinterpret_cast<const unsigned char*>(data)), end_(p_ + size) {}
  explicit Reader(std::string_view s) : Reader(s.data(), s.size()) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return p_ == end_; }
  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::uint64_t get_varint();
  std::int64_t get_svarint();
  std::string get_string();
  Value get_value();
  Tuple get_tuple();

 private:
  const unsigned char* p_;
  const unsigned char* end_;
  bool ok_ = true;

  bool take(std::size_t n) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
};

/// CRC-32 (IEEE 802.3 polynomial, reflected). `crc` chains calls; pass the
/// previous return value to continue over a split buffer.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t crc = 0);

}  // namespace sdl::codec
