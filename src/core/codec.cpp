#include "core/codec.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace sdl::codec {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_svarint(std::string& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_varint(out, (u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s.data(), s.size());
}

namespace {
// Tags are part of the durable format — append-only, never renumber.
enum : std::uint8_t {
  kTagNil = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagDouble = 3,
  kTagAtom = 4,
  kTagString = 5,
};
}  // namespace

void put_value(std::string& out, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::Nil:
      put_u8(out, kTagNil);
      break;
    case Value::Kind::Bool:
      put_u8(out, kTagBool);
      put_u8(out, v.as_bool() ? 1 : 0);
      break;
    case Value::Kind::Int:
      put_u8(out, kTagInt);
      put_svarint(out, v.as_int());
      break;
    case Value::Kind::Double:
      put_u8(out, kTagDouble);
      put_u64(out, std::bit_cast<std::uint64_t>(v.as_double()));
      break;
    case Value::Kind::Atom:
      put_u8(out, kTagAtom);
      put_string(out, v.as_atom().text());
      break;
    case Value::Kind::String:
      put_u8(out, kTagString);
      put_string(out, v.as_string());
      break;
  }
}

void put_tuple(std::string& out, const Tuple& t) {
  put_varint(out, t.arity());
  for (const Value& v : t) put_value(out, v);
}

std::uint8_t Reader::get_u8() {
  if (!take(1)) return 0;
  return *p_++;
}

std::uint32_t Reader::get_u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p_++) << (8 * i);
  return v;
}

std::uint64_t Reader::get_u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p_++) << (8 * i);
  return v;
}

std::uint64_t Reader::get_varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (!take(1)) return 0;
    const unsigned char b = *p_++;
    if (shift == 63 && (b & 0x7e) != 0) {  // overflow past 64 bits
      ok_ = false;
      return 0;
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
  }
  ok_ = false;  // unterminated varint
  return 0;
}

std::int64_t Reader::get_svarint() {
  const std::uint64_t u = get_varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::string Reader::get_string() {
  const std::uint64_t n = get_varint();
  if (!ok_ || !take(static_cast<std::size_t>(n))) return {};
  std::string s(reinterpret_cast<const char*>(p_), static_cast<std::size_t>(n));
  p_ += n;
  return s;
}

Value Reader::get_value() {
  switch (get_u8()) {
    case kTagNil:
      return Value();
    case kTagBool:
      return Value(get_u8() != 0);
    case kTagInt:
      return Value(get_svarint());
    case kTagDouble:
      return Value(std::bit_cast<double>(get_u64()));
    case kTagAtom:
      return Value(Atom::intern(get_string()));
    case kTagString:
      return Value(get_string());
    default:
      ok_ = false;
      return Value();
  }
}

Tuple Reader::get_tuple() {
  const std::uint64_t arity = get_varint();
  // An arity the remaining window cannot possibly hold (each field is at
  // least one tag byte) is corruption, not a huge tuple — reject before
  // the reserve so garbage lengths cannot balloon memory.
  if (!ok_ || arity > remaining()) {
    ok_ = false;
    return Tuple();
  }
  std::vector<Value> fields;
  fields.reserve(static_cast<std::size_t>(arity));
  for (std::uint64_t i = 0; i < arity && ok_; ++i) fields.push_back(get_value());
  if (!ok_) return Tuple();
  return Tuple(std::move(fields));
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace sdl::codec
