#include "core/epoch.hpp"

#include <atomic>
#include <mutex>
#include <vector>

namespace sdl::epoch {
namespace {

constexpr std::uint64_t kInactive = ~std::uint64_t{0};
/// Attempt an epoch advance (and collect own garbage) every this many
/// retires — amortizes the slot scan without letting backlog grow
/// unboundedly under retract storms.
constexpr std::size_t kCollectPeriod = 64;

struct Retired {
  void* p;
  void (*deleter)(void*);
  std::uint64_t epoch;
};

/// One participant. Slots are nodes of an append-only lock-free list;
/// exited threads release their slot for reuse (claimed flag) but the
/// node itself is never freed, so advance() can scan without locks.
struct alignas(64) Slot {
  std::atomic<std::uint64_t> epoch{kInactive};
  std::atomic<bool> claimed{false};
  Slot* next = nullptr;  // immutable after publication
};

std::atomic<Slot*> g_slots{nullptr};
std::atomic<std::uint64_t> g_epoch{2};  // >= 2 so epoch-0 stamps are old
std::atomic<std::int64_t> g_backlog{0};

/// Retire lists whose owner thread exited before they drained. Guarded by
/// a mutex — touched only on thread exit and inside collect passes.
std::mutex g_orphans_mutex;
std::vector<Retired> g_orphans;

Slot* claim_slot() {
  for (Slot* s = g_slots.load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    bool expected = false;
    if (!s->claimed.load(std::memory_order_relaxed) &&
        s->claimed.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      return s;
    }
  }
  Slot* s = new Slot;
  s->claimed.store(true, std::memory_order_relaxed);
  Slot* head = g_slots.load(std::memory_order_relaxed);
  do {
    s->next = head;
  } while (!g_slots.compare_exchange_weak(head, s, std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
  return s;
}

/// Advance the global epoch by one if every pinned slot has caught up.
/// All epoch loads/stores on this path are seq_cst: the advance is the
/// proof step of the grace-period argument (see epoch.hpp) and the proof
/// needs the single total order.
bool try_advance() {
  const std::uint64_t e = g_epoch.load(std::memory_order_seq_cst);
  for (Slot* s = g_slots.load(std::memory_order_seq_cst); s != nullptr;
       s = s->next) {
    const std::uint64_t local = s->epoch.load(std::memory_order_seq_cst);
    if (local != kInactive && local != e) return false;  // straggler
  }
  std::uint64_t expected = e;
  g_epoch.compare_exchange_strong(expected, e + 1, std::memory_order_seq_cst);
  return true;  // advanced, or someone else did — either way progress
}

struct Participant {
  Slot* slot = nullptr;
  std::uint64_t pin_depth = 0;
  std::vector<Retired> retired;
  std::size_t since_collect = 0;

  Slot* ensure_slot() {
    if (slot == nullptr) slot = claim_slot();
    return slot;
  }

  /// Frees every entry of `list` whose grace period has expired (stamped
  /// epoch + 2 <= global). Returns the number freed.
  static std::size_t collect_list(std::vector<Retired>& list) {
    const std::uint64_t safe = g_epoch.load(std::memory_order_seq_cst);
    std::size_t freed = 0;
    std::size_t keep = 0;
    for (Retired& r : list) {
      if (r.epoch + 2 <= safe) {
        r.deleter(r.p);
        ++freed;
      } else {
        list[keep++] = r;
      }
    }
    list.resize(keep);
    if (freed != 0) {
      g_backlog.fetch_sub(static_cast<std::int64_t>(freed),
                          std::memory_order_relaxed);
    }
    return freed;
  }

  void maybe_collect() {
    if (++since_collect < kCollectPeriod) return;
    since_collect = 0;
    try_advance();
    collect_list(retired);
  }

  ~Participant() {
    // Thread exit: release the slot for reuse and hand any undrained
    // retirees to the orphan list (they are freed by a later collect or
    // by drain() — never leaked, never freed early).
    if (slot != nullptr) {
      slot->epoch.store(kInactive, std::memory_order_seq_cst);
      slot->claimed.store(false, std::memory_order_release);
    }
    if (!retired.empty()) {
      std::scoped_lock lock(g_orphans_mutex);
      g_orphans.insert(g_orphans.end(), retired.begin(), retired.end());
    }
  }
};

thread_local Participant t_participant;

}  // namespace

Guard::Guard() {
  Participant& me = t_participant;
  if (me.pin_depth++ != 0) return;  // re-entrant: outer pin stands
  Slot* slot = me.ensure_slot();
  // Pin loop: publish our epoch, then re-read the global one; if an
  // advance slipped between the two, re-publish at the newer epoch. On
  // exit our published epoch equals a value the global counter held AFTER
  // the store — the advance scan is guaranteed to either see us or have
  // its new epoch seen by us.
  std::uint64_t e = g_epoch.load(std::memory_order_seq_cst);
  for (;;) {
    slot->epoch.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = g_epoch.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
}

Guard::~Guard() {
  Participant& me = t_participant;
  if (--me.pin_depth != 0) return;
  me.slot->epoch.store(kInactive, std::memory_order_seq_cst);
}

void retire(void* p, void (*deleter)(void*)) {
  Participant& me = t_participant;
  me.retired.push_back(
      Retired{p, deleter, g_epoch.load(std::memory_order_seq_cst)});
  g_backlog.fetch_add(1, std::memory_order_relaxed);
  me.maybe_collect();
}

std::size_t backlog() {
  const std::int64_t n = g_backlog.load(std::memory_order_relaxed);
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

std::size_t drain() {
  Participant& me = t_participant;
  std::size_t freed = 0;
  // Each advance can unlock one more stamp generation; three passes move
  // everything collectable with all threads quiescent. A pinned
  // concurrent thread simply stops the advances (best effort).
  for (int pass = 0; pass < 3; ++pass) {
    try_advance();
    freed += Participant::collect_list(me.retired);
    std::scoped_lock lock(g_orphans_mutex);
    freed += Participant::collect_list(g_orphans);
  }
  return freed;
}

std::uint64_t current_epoch() {
  return g_epoch.load(std::memory_order_seq_cst);
}

bool pinned() { return t_participant.pin_depth != 0; }

}  // namespace sdl::epoch
