#include "core/value.hpp"

#include <cmath>
#include <functional>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sdl {
namespace {

// Boost-style hash combiner.
std::size_t combine(std::size_t seed, std::size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

}  // namespace

double Value::as_number() const {
  if (is_int()) return static_cast<double>(as_int());
  if (is_double()) return as_double();
  throw std::invalid_argument("sdl::Value: not a number: " + to_string());
}

bool Value::truthy() const {
  if (is_bool()) return as_bool();
  throw std::invalid_argument("sdl::Value: guard did not evaluate to a boolean: " +
                              to_string());
}

bool operator<(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return a.kind() < b.kind();
  switch (a.kind()) {
    case Value::Kind::Nil:
      return false;
    case Value::Kind::Bool:
      return a.as_bool() < b.as_bool();
    case Value::Kind::Int:
      return a.as_int() < b.as_int();
    case Value::Kind::Double:
      return a.as_double() < b.as_double();
    case Value::Kind::Atom:
      return a.as_atom().text() < b.as_atom().text();
    case Value::Kind::String:
      return a.as_string() < b.as_string();
  }
  return false;  // unreachable
}

std::string Value::to_string() const {
  switch (kind()) {
    case Kind::Nil:
      return "nil?";
    case Kind::Bool:
      return as_bool() ? "true" : "false";
    case Kind::Int:
      return std::to_string(as_int());
    case Kind::Double: {
      std::ostringstream os;
      os << as_double();
      std::string s = os.str();
      // Keep doubles visually distinct from ints in dumps.
      if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
      return s;
    }
    case Kind::Atom:
      return std::string(as_atom().text());
    case Kind::String: {
      std::string out = "\"";
      for (char c : as_string()) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
  }
  return "?";
}

std::size_t Value::hash() const {
  const auto k = static_cast<std::size_t>(kind());
  switch (kind()) {
    case Kind::Nil:
      return combine(k, 0);
    case Kind::Bool:
      return combine(k, as_bool() ? 1 : 0);
    case Kind::Int:
      return combine(k, std::hash<std::int64_t>{}(as_int()));
    case Kind::Double:
      return combine(k, std::hash<double>{}(as_double()));
    case Kind::Atom:
      return combine(k, as_atom().id());
    case Kind::String:
      return combine(k, std::hash<std::string>{}(as_string()));
  }
  return 0;  // unreachable
}

int Value::numeric_compare(const Value& a, const Value& b) {
  int c = 0;
  if (!numeric_compare_opt(a, b, c)) {
    throw std::invalid_argument("sdl::Value: cannot compare " + a.to_string() +
                                " with " + b.to_string());
  }
  return c;
}

bool Value::numeric_compare_opt(const Value& a, const Value& b,
                                int& out) noexcept {
  if (a.is_number() && b.is_number()) {
    const double x = a.is_int() ? static_cast<double>(a.as_int()) : a.as_double();
    const double y = b.is_int() ? static_cast<double>(b.as_int()) : b.as_double();
    out = x < y ? -1 : (x > y ? 1 : 0);
    return true;
  }
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Kind::Bool:
      out = static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
      return true;
    case Kind::Atom: {
      const int c = a.as_atom().text().compare(b.as_atom().text());
      out = c < 0 ? -1 : (c > 0 ? 1 : 0);
      return true;
    }
    case Kind::String: {
      const int c = a.as_string().compare(b.as_string());
      out = c < 0 ? -1 : (c > 0 ? 1 : 0);
      return true;
    }
    default:
      return false;
  }
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.to_string();
}

}  // namespace sdl
