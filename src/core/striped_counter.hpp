// A cache-friendly statistics counter: increments land on one of 16
// cache-line-sized stripes selected per thread, so hot-path counting does
// not serialize unrelated cores on a shared line; reads sum the stripes.
// For statistics only — the sum is not a linearizable snapshot.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>

namespace sdl {

class StripedCounter {
 public:
  void add(std::uint64_t n = 1) {
    stripe().fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t load() const {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  std::atomic<std::uint64_t>& stripe() {
    static thread_local const std::size_t index =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return cells_[index % cells_.size()].v;
  }

  std::array<Cell, 16> cells_;
};

}  // namespace sdl
