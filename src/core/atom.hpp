// Interned symbolic constants ("atoms") for the SDL value domain.
//
// The paper's value domain V consists of "atoms and integers" (§2.1).
// Atoms are interned process-wide so that equality and hashing are O(1)
// integer operations regardless of spelling length; this is what makes the
// (head, arity) dataspace index cheap (see src/space/dataspace.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sdl {

/// An interned symbol. Two atoms are equal iff their spellings are equal.
/// Copying an Atom is copying a 32-bit id; the spelling lives in a
/// process-wide intern table that is never shrunk, so `text()` views remain
/// valid for the life of the process.
class Atom {
 public:
  /// Default-constructed atom is the empty-spelling atom.
  Atom() : id_(0) {}

  /// Interns `spelling` (idempotent, thread-safe) and returns its atom.
  static Atom intern(std::string_view spelling);

  /// Returns the spelling of this atom. The view is valid forever.
  [[nodiscard]] std::string_view text() const;

  /// The dense intern-table index; useful as a hash or array key.
  [[nodiscard]] std::uint32_t id() const { return id_; }

  friend bool operator==(Atom a, Atom b) { return a.id_ == b.id_; }
  friend bool operator!=(Atom a, Atom b) { return a.id_ != b.id_; }
  /// Order is by intern id (first-interned first), not lexicographic.
  /// Use text() comparisons when lexicographic order matters.
  friend bool operator<(Atom a, Atom b) { return a.id_ < b.id_; }

  /// Number of distinct atoms interned so far (for diagnostics/tests).
  static std::size_t interned_count();

 private:
  explicit Atom(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

}  // namespace sdl

template <>
struct std::hash<sdl::Atom> {
  std::size_t operator()(sdl::Atom a) const noexcept { return a.id(); }
};
