#include "core/tuple.hpp"

#include <algorithm>
#include <ostream>

namespace sdl {

std::string TupleId::to_string() const {
  return "#" + std::to_string(owner()) + "." + std::to_string(sequence());
}

bool operator<(const Tuple& a, const Tuple& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

std::size_t Tuple::hash() const {
  std::size_t seed = fields_.size();
  for (const Value& v : fields_) {
    seed ^= v.hash() + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  }
  return seed;
}

std::string Tuple::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].to_string();
  }
  out += "]";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return os << t.to_string();
}

}  // namespace sdl
