#include "core/atom.hpp"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>

namespace sdl {
namespace {

// The intern table. Spellings are stored in a deque<std::string> so that
// growth never invalidates string_views handed out by Atom::text().
struct InternTable {
  mutable std::shared_mutex mutex;  // guards both members below
  std::deque<std::string> spellings;
  std::unordered_map<std::string_view, std::uint32_t> index;

  InternTable() {
    // Reserve id 0 for the empty atom so that Atom{} is well-defined.
    spellings.emplace_back("");
    index.emplace(spellings.back(), 0);
  }
};

InternTable& table() {
  static InternTable t;
  return t;
}

}  // namespace

Atom Atom::intern(std::string_view spelling) {
  InternTable& t = table();
  {
    std::shared_lock lock(t.mutex);
    if (auto it = t.index.find(spelling); it != t.index.end()) {
      return Atom(it->second);
    }
  }
  std::unique_lock lock(t.mutex);
  if (auto it = t.index.find(spelling); it != t.index.end()) {
    return Atom(it->second);
  }
  if (t.spellings.size() > 0xFFFFFFFFull) {
    throw std::length_error("sdl::Atom intern table overflow");
  }
  const auto id = static_cast<std::uint32_t>(t.spellings.size());
  t.spellings.emplace_back(spelling);
  t.index.emplace(t.spellings.back(), id);
  return Atom(id);
}

std::string_view Atom::text() const {
  InternTable& t = table();
  std::shared_lock lock(t.mutex);
  return t.spellings[id_];
}

std::size_t Atom::interned_count() {
  InternTable& t = table();
  std::shared_lock lock(t.mutex);
  return t.spellings.size();
}

}  // namespace sdl
