// Tuples and tuple identifiers (§2).
//
// "Each tuple is owned by the process that asserted it and the owner may be
//  determined by examining the unique tuple identifier associated with each
//  tuple. Typically, tuple identifiers are ignored by application programs
//  but are of interest during debugging and testing."
//
// TupleId packs (owner process id, per-runtime sequence number); the trace
// substrate (src/trace) surfaces it for exactly that debugging use.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/value.hpp"

namespace sdl {

/// Identifies the logical process that asserted a tuple. Process id 0 is
/// reserved for "the environment" (tuples seeded by the host program).
using ProcessId = std::uint32_t;
inline constexpr ProcessId kEnvironmentProcess = 0;

/// Unique identifier of one tuple *instance* in the dataspace. The
/// dataspace is a multiset: two instances with equal fields have distinct
/// ids. Encodes the owner for debugging per the paper.
class TupleId {
 public:
  TupleId() = default;
  TupleId(ProcessId owner, std::uint64_t sequence)
      : bits_((static_cast<std::uint64_t>(owner) << 40) | (sequence & kSeqMask)) {}

  [[nodiscard]] ProcessId owner() const {
    return static_cast<ProcessId>(bits_ >> 40);
  }
  [[nodiscard]] std::uint64_t sequence() const { return bits_ & kSeqMask; }
  [[nodiscard]] std::uint64_t bits() const { return bits_; }
  [[nodiscard]] bool valid() const { return bits_ != 0; }

  friend bool operator==(TupleId a, TupleId b) { return a.bits_ == b.bits_; }
  friend bool operator!=(TupleId a, TupleId b) { return a.bits_ != b.bits_; }
  friend bool operator<(TupleId a, TupleId b) { return a.bits_ < b.bits_; }

  /// "#owner.sequence", e.g. "#3.17".
  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr std::uint64_t kSeqMask = (1ull << 40) - 1;
  std::uint64_t bits_ = 0;
};

/// An immutable sequence of values — the unit of dataspace content.
/// Cheap to move; copying copies the field vector.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> fields) : fields_(std::move(fields)) {}
  Tuple(std::initializer_list<Value> fields) : fields_(fields) {}

  [[nodiscard]] std::size_t arity() const { return fields_.size(); }
  [[nodiscard]] bool empty() const { return fields_.empty(); }
  [[nodiscard]] const Value& operator[](std::size_t i) const { return fields_[i]; }
  [[nodiscard]] const Value& at(std::size_t i) const { return fields_.at(i); }
  [[nodiscard]] const std::vector<Value>& fields() const { return fields_; }

  [[nodiscard]] auto begin() const { return fields_.begin(); }
  [[nodiscard]] auto end() const { return fields_.end(); }

  /// Structural (multiset-element) equality: arity and fields.
  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.fields_ == b.fields_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  /// Lexicographic order under Value's canonical total order.
  friend bool operator<(const Tuple& a, const Tuple& b);

  [[nodiscard]] std::size_t hash() const;

  /// SDL literal syntax: "[year, 87]".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Value> fields_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

/// Field coercion backing tup(): const char* → Atom (SDL examples write
/// heads as bare atoms), everything else via Value's converting ctors.
inline Value detail_make_field(const char* s) { return Value::atom(s); }
inline Value detail_make_field(Value v) { return v; }
template <typename T>
Value detail_make_field(T&& x) {
  return Value(std::forward<T>(x));
}

/// Convenience factory used pervasively in tests and examples:
///   tup(Atom-spelling-or-value, ...) — string literals become *atoms*
///   (use std::string{} for genuine string values).
template <typename... Fields>
Tuple tup(Fields&&... fields) {
  std::vector<Value> v;
  v.reserve(sizeof...(fields));
  (v.push_back(detail_make_field(std::forward<Fields>(fields))), ...);
  return Tuple(std::move(v));
}

}  // namespace sdl

template <>
struct std::hash<sdl::Tuple> {
  std::size_t operator()(const sdl::Tuple& t) const noexcept { return t.hash(); }
};
template <>
struct std::hash<sdl::TupleId> {
  std::size_t operator()(sdl::TupleId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.bits());
  }
};
