#include "linda/linda.hpp"

namespace sdl {

TupleId Linda::out(Tuple t, ProcessId owner) {
  const IndexKey key = IndexKey::of(t);
  TupleId id;
  engine_.exclusive([&]() -> std::vector<IndexKey> {
    id = engine_.space().insert(std::move(t), owner);
    return {key};
  });
  return id;
}

std::optional<Tuple> Linda::access(const TuplePattern& pattern, bool remove,
                                   bool blocking, ProcessId owner) {
  // To return the matched tuple, desugar the template into a transaction
  // whose pattern captures every field in a fresh variable, with guards
  // enforcing the template's constants and shared-variable equalities.
  const std::size_t arity = pattern.arity();
  auto field_var = [](std::size_t i) { return "__f" + std::to_string(i); };

  Transaction txn;
  txn.type = blocking ? TxnType::Delayed : TxnType::Immediate;
  Query& q = txn.query;
  std::vector<Term> capture;
  capture.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    const Term& t = pattern.terms()[i];
    if (t.kind == Term::Kind::Expr) {
      // Keep constants in place — a constant head keeps the access
      // bucket-indexed, like the corresponding SDL pattern.
      capture.push_back(t);
    } else {
      q.local_vars.push_back(field_var(i));
      capture.push_back(V(field_var(i)));
    }
  }
  q.patterns.emplace_back(std::move(capture), remove);

  ExprPtr guard;
  auto conjoin = [&guard](ExprPtr e) {
    guard = guard ? land(std::move(guard), std::move(e)) : std::move(e);
  };
  for (std::size_t i = 0; i < arity; ++i) {
    const Term& t = pattern.terms()[i];
    if (t.kind != Term::Kind::Var) continue;
    // Linda formal with a repeated name: all positions must agree.
    for (std::size_t j = i + 1; j < arity; ++j) {
      const Term& u = pattern.terms()[j];
      if (u.kind == Term::Kind::Var && u.name == t.name) {
        conjoin(eq(evar(field_var(i)), evar(field_var(j))));
      }
    }
  }
  q.guard = std::move(guard);

  SymbolTable st;
  txn.resolve(st);
  Env env(static_cast<std::size_t>(st.size()));

  const TxnResult r = blocking ? execute_blocking(engine_, txn, env, owner)
                               : engine_.execute(txn, env, owner);
  if (!r.success) return std::nullopt;

  std::vector<Value> fields;
  fields.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    const Term& t = pattern.terms()[i];
    if (t.kind == Term::Kind::Expr) {
      fields.push_back(t.expr->eval(env, engine_.functions()));
    } else {
      fields.push_back(env[static_cast<std::size_t>(*st.lookup(field_var(i)))]);
    }
  }
  return Tuple(std::move(fields));
}

Tuple Linda::in(const TuplePattern& pattern, ProcessId owner) {
  return *access(pattern, /*remove=*/true, /*blocking=*/true, owner);
}

Tuple Linda::rd(const TuplePattern& pattern, ProcessId owner) {
  return *access(pattern, /*remove=*/false, /*blocking=*/true, owner);
}

std::optional<Tuple> Linda::inp(const TuplePattern& pattern, ProcessId owner) {
  return access(pattern, /*remove=*/true, /*blocking=*/false, owner);
}

std::optional<Tuple> Linda::rdp(const TuplePattern& pattern, ProcessId owner) {
  return access(pattern, /*remove=*/false, /*blocking=*/false, owner);
}

}  // namespace sdl
