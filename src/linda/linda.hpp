// Linda baseline (S9).
//
// The paper positions SDL against Linda: "Linda provides processes with
// very simple dataspace access primitives (read, assert, and retract one
// tuple at a time)" (§1). This module implements those primitives —
// out / in / rd (blocking) and inp / rdp (non-blocking) plus eval-style
// process spawning — over the same dataspace and engines, so experiment
// E12 can compare SDL's multi-tuple atomic transactions against idiomatic
// one-tuple-at-a-time Linda compositions on identical substrates.
#pragma once

#include <optional>

#include "txn/engine.hpp"

namespace sdl {

/// A Linda template: like a TuplePattern but restricted to constants and
/// typed/untyped wildcards — Linda has no cross-tuple joins. Reuses
/// TuplePattern for implementation; formal variables extract fields.
///
/// Template sharing: constant/wildcard/variable templates (the Linda
/// repertoire) may be shared freely across threads. Templates embedding
/// *variable-referencing expressions* are resolved per access and must
/// not be shared concurrently — build such patterns per call site.
class Linda {
 public:
  /// The Linda space borrows an engine (and its dataspace/waitset).
  explicit Linda(Engine& engine) : engine_(engine) {}

  /// out(t): asserts a tuple. Never blocks.
  TupleId out(Tuple t, ProcessId owner = kEnvironmentProcess);

  /// in(template): blocks until a matching tuple exists, retracts and
  /// returns it.
  Tuple in(const TuplePattern& pattern, ProcessId owner = kEnvironmentProcess);

  /// rd(template): blocks until a matching tuple exists; returns a copy.
  Tuple rd(const TuplePattern& pattern, ProcessId owner = kEnvironmentProcess);

  /// inp(template): non-blocking in; nullopt when no match.
  std::optional<Tuple> inp(const TuplePattern& pattern,
                           ProcessId owner = kEnvironmentProcess);

  /// rdp(template): non-blocking rd.
  std::optional<Tuple> rdp(const TuplePattern& pattern,
                           ProcessId owner = kEnvironmentProcess);

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] Dataspace& space() { return engine_.space(); }

 private:
  std::optional<Tuple> access(const TuplePattern& pattern, bool remove,
                              bool blocking, ProcessId owner);

  Engine& engine_;
};

}  // namespace sdl
