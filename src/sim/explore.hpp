// Schedule exploration drivers over the deterministic scheduler mode
// (ISSUE 3 tentpole): seed sweeps with failure minimization, exact replay,
// and an exhaustive small-bound explorer with commutation pruning
// (DPOR-lite — an alternative schedule is skipped when the step it would
// reorder provably commutes with everything it would jump over).
//
// Usage shape (reusable as a ctest fixture):
//
//   auto build = [](std::int64_t seed) {
//     RuntimeOptions o;
//     o.scheduler.deterministic_seed = seed;
//     auto rt = std::make_unique<Runtime>(o);
//     ... define/seed/spawn ...
//     rt->enable_history();
//     return rt;
//   };
//   SweepResult r = sweep_seeds(build, {.seeds = 64});
//   ASSERT_TRUE(r.ok()) << r.first_failure;   // names the reproducing seed
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "process/runtime.hpp"
#include "sim/decision.hpp"

namespace sdl::sim {

/// Builds a fresh runtime and society for one deterministic run. MUST set
/// `scheduler.deterministic_seed = seed` in the options and should call
/// enable_history() when serializability checking is wanted.
using BuildFn = std::function<std::unique_ptr<Runtime>(std::int64_t seed)>;

/// Program-level invariant checked after each run. Returns an empty string
/// when the run is acceptable, a human-readable complaint otherwise.
using CheckFn = std::function<std::string(Runtime&, const RunReport&)>;

struct SweepOptions {
  std::size_t seeds = 64;
  std::uint64_t first_seed = 0;
  /// Run the serializability checker after every run (no-op unless the
  /// builder called enable_history()).
  bool check_serializability = true;
  /// On the first failure, shrink the recorded schedule to a minimal
  /// failing decision prefix (replayed with default continuation).
  bool minimize = true;
};

struct SweepResult {
  std::size_t runs = 0;
  std::size_t failures = 0;
  std::int64_t first_failing_seed = -1;
  /// Full diagnosis of the first failure: the reproducing seed, the
  /// complaint, and the minimized schedule.
  std::string first_failure;
  /// Minimal failing decision prefix (empty when nothing failed or
  /// minimization is off). Feed to replay_trace to reproduce.
  std::vector<std::uint32_t> minimized_choices;
  /// Distinct schedules observed across the sweep (hash of the dispatch
  /// sequence) — how much interleaving coverage the seeds actually bought.
  std::size_t distinct_traces = 0;
  [[nodiscard]] bool ok() const { return failures == 0; }
};

/// Runs `build(seed)` to quiescence for `seeds` consecutive seeds. A run
/// fails when the report carries process errors, the serializability
/// checker objects, or `check` returns a complaint.
SweepResult sweep_seeds(const BuildFn& build, SweepOptions opts = {},
                        const CheckFn& check = nullptr);

struct ReplayResult {
  RunReport report;
  CheckReport check;
  /// Complete decision log of the replayed run.
  std::vector<std::uint32_t> choices;
};

/// Re-runs one exact schedule: the first `choices.size()` decisions are
/// forced, the rest fall to the first ready process.
ReplayResult replay_trace(const BuildFn& build,
                          const std::vector<std::uint32_t>& choices,
                          std::int64_t seed = 0);

struct ExploreOptions {
  /// Hard cap on schedules actually run (the DFS stops, exhausted=false).
  std::size_t max_schedules = 4096;
  /// Decision points beyond this depth are not branched on.
  std::size_t max_depth = 4096;
  /// Skip alternatives whose reordered step commutes with every step it
  /// would jump over (adjacent-bucket independence, SimStep::dependent).
  bool prune_commuting = true;
  bool check_serializability = true;
};

struct ExploreResult {
  std::size_t schedules_run = 0;
  /// Alternatives skipped by the commutation argument.
  std::size_t schedules_pruned = 0;
  std::size_t failures = 0;
  std::string first_failure;
  std::vector<std::uint32_t> failing_choices;
  /// True when the DFS drained within the caps — every non-equivalent
  /// schedule up to max_depth was run.
  bool exhausted = false;
  [[nodiscard]] bool ok() const { return failures == 0; }
};

/// Systematic DFS over schedules of `build(0)`: at every decision point of
/// every executed schedule, each unexplored alternative becomes a new
/// forced prefix. Only for small societies — the space is exponential;
/// pruning removes provably equivalent interleavings, not the blow-up.
ExploreResult explore_schedules(const BuildFn& build, ExploreOptions opts = {},
                                const CheckFn& check = nullptr);

}  // namespace sdl::sim
