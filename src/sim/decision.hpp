// Deterministic-simulation decision sources (ISSUE 3 tentpole).
//
// In deterministic mode the scheduler runs every process on one
// coordinator thread and, at each dispatch point, asks a DecisionSource
// which ready process goes next. The source sees the candidate list and,
// after the step, its index-bucket footprint — enough for a replay source
// to re-drive an exact schedule and for the explorer (sim/explore) to
// prune interleavings whose adjacent steps commute (DPOR-lite).
//
// This header is dependency-light on purpose: the scheduler includes it,
// and the explorer library (sdl_sim) links the scheduler — keeping the
// interface here avoids a cycle between the two.
#pragma once

#include <cstdint>
#include <vector>

#include "space/dataspace.hpp"

namespace sdl::sim {

/// splitmix64. Used instead of <random> engines + distributions because
/// the schedule must be bit-identical across standard libraries and
/// platforms for the same seed — std distributions make no such promise.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Index-bucket footprint of one dispatched step, over-approximated: every
/// bucket a transaction may read is in `reads` (arity-wide patterns widen
/// to `reads_all`), and for effectful transactions the read buckets are
/// also counted as writes (retract targets come from matched buckets).
/// `opaque` marks steps with scheduler-level side effects the buckets
/// cannot express (spawn, terminate, kill, timeout, consensus fire) —
/// they are treated as dependent with everything.
struct SimStep {
  ProcessId pid = 0;
  std::vector<IndexKey> reads;
  std::vector<IndexKey> writes;
  bool reads_all = false;
  bool writes_all = false;
  bool opaque = false;

  [[nodiscard]] bool touches_anything() const {
    return reads_all || writes_all || !reads.empty() || !writes.empty();
  }

  /// Conservative dependence: true unless the two steps provably commute.
  [[nodiscard]] bool dependent(const SimStep& other) const {
    if (pid == other.pid) return true;
    if (opaque || other.opaque) return true;
    auto overlap = [](const std::vector<IndexKey>& a,
                      const std::vector<IndexKey>& b) {
      for (const IndexKey& x : a) {
        for (const IndexKey& y : b) {
          if (x == y) return true;
        }
      }
      return false;
    };
    // writes × (reads ∪ writes), both directions; *_all widens.
    if ((writes_all && other.touches_anything()) ||
        (other.writes_all && touches_anything())) {
      return true;
    }
    if ((reads_all && (other.writes_all || !other.writes.empty())) ||
        (other.reads_all && (writes_all || !writes.empty()))) {
      return true;
    }
    return overlap(writes, other.writes) || overlap(writes, other.reads) ||
           overlap(reads, other.writes);
  }
};

/// Chooses the next ready process at each dispatch point of a
/// deterministic run. `pick` returns an index into `ready` (out-of-range
/// values are clamped by the scheduler); `observe` is called after the
/// chosen process's step with its footprint.
class DecisionSource {
 public:
  virtual ~DecisionSource() = default;
  virtual std::size_t pick(const std::vector<ProcessId>& ready) = 0;
  virtual void observe(const SimStep& step) { (void)step; }
};

/// The seeded random walk (SchedulerOptions::deterministic_seed).
class SeededDecisionSource final : public DecisionSource {
 public:
  explicit SeededDecisionSource(std::uint64_t seed) : rng_(seed) {}
  std::size_t pick(const std::vector<ProcessId>& ready) override {
    return static_cast<std::size_t>(rng_.next() % ready.size());
  }

 private:
  SplitMix64 rng_;
};

/// Replays a fixed choice prefix, then falls through to `fallback` (or
/// index 0 when none), recording every decision point: the candidates,
/// the choice taken, and the step's footprint. The explorer DFS feeds the
/// log back as longer prefixes; the seed-sweep minimizer truncates it.
class RecordingDecisionSource final : public DecisionSource {
 public:
  struct Decision {
    std::vector<ProcessId> ready;
    std::uint32_t chosen = 0;
    SimStep step;
  };

  explicit RecordingDecisionSource(std::vector<std::uint32_t> prefix = {},
                                   DecisionSource* fallback = nullptr)
      : prefix_(std::move(prefix)), fallback_(fallback) {}

  std::size_t pick(const std::vector<ProcessId>& ready) override {
    std::size_t choice = 0;
    if (log_.size() < prefix_.size()) {
      choice = prefix_[log_.size()];
    } else if (fallback_ != nullptr) {
      choice = fallback_->pick(ready);
    }
    if (choice >= ready.size()) choice = ready.size() - 1;
    Decision d;
    d.ready = ready;
    d.chosen = static_cast<std::uint32_t>(choice);
    log_.push_back(std::move(d));
    return choice;
  }

  void observe(const SimStep& step) override {
    if (!log_.empty()) log_.back().step = step;
  }

  [[nodiscard]] const std::vector<Decision>& log() const { return log_; }
  [[nodiscard]] std::vector<std::uint32_t> choices() const {
    std::vector<std::uint32_t> out;
    out.reserve(log_.size());
    for (const Decision& d : log_) out.push_back(d.chosen);
    return out;
  }

 private:
  std::vector<std::uint32_t> prefix_;
  DecisionSource* fallback_;
  std::vector<Decision> log_;
};

}  // namespace sdl::sim
