#include "sim/explore.hpp"

#include <algorithm>
#include <unordered_set>

namespace sdl::sim {

namespace {

struct Verdict {
  bool failed = false;
  std::string reason;
};

Verdict judge(Runtime& rt, const RunReport& report, bool check_ser,
              const CheckFn& check) {
  if (!report.errors.empty()) {
    return {true, "process error: " + report.errors.front()};
  }
  if (check_ser) {
    const CheckReport cr = rt.check_history();
    if (!cr.ok()) return {true, "serializability: " + cr.to_string()};
  }
  if (check) {
    std::string msg = check(rt, report);
    if (!msg.empty()) return {true, std::move(msg)};
  }
  return {};
}

/// One forced-prefix run; returns the verdict and fills `src`'s log.
Verdict run_once(const BuildFn& build, std::int64_t seed,
                 RecordingDecisionSource& src, bool check_ser,
                 const CheckFn& check) {
  std::unique_ptr<Runtime> rt = build(seed);
  rt->scheduler().set_decision_source(&src);
  const RunReport report = rt->run();
  return judge(*rt, report, check_ser, check);
}

std::string render_choices(const std::vector<std::uint32_t>& choices) {
  std::string out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(choices[i]);
  }
  return out;
}

/// FNV-1a over the dispatch sequence — two runs with the same hash made
/// the same choices over the same candidates.
std::uint64_t trace_hash(const std::vector<RecordingDecisionSource::Decision>& log) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  for (const auto& d : log) {
    mix(d.ready.size());
    mix(d.chosen);
    mix(d.step.pid);
  }
  return h;
}

}  // namespace

SweepResult sweep_seeds(const BuildFn& build, SweepOptions opts,
                        const CheckFn& check) {
  SweepResult result;
  std::unordered_set<std::uint64_t> hashes;

  for (std::size_t i = 0; i < opts.seeds; ++i) {
    const std::int64_t seed =
        static_cast<std::int64_t>(opts.first_seed + i);
    SeededDecisionSource walk(static_cast<std::uint64_t>(seed));
    RecordingDecisionSource src({}, &walk);
    const Verdict v =
        run_once(build, seed, src, opts.check_serializability, check);
    ++result.runs;
    hashes.insert(trace_hash(src.log()));
    if (!v.failed) continue;

    ++result.failures;
    if (result.first_failing_seed >= 0) continue;  // keep counting, once diagnosed
    result.first_failing_seed = seed;
    std::vector<std::uint32_t> choices = src.choices();

    if (opts.minimize) {
      // Shrink to the shortest forced prefix (default continuation: first
      // ready process) that still fails. The failure is deterministic, so
      // a binary search over the prefix length is sound whenever failure
      // is monotone in the prefix; the final verify guards the cases
      // where it is not.
      auto fails_at = [&](std::size_t len) {
        std::vector<std::uint32_t> prefix(choices.begin(),
                                          choices.begin() +
                                              static_cast<std::ptrdiff_t>(len));
        RecordingDecisionSource replay(std::move(prefix), nullptr);
        return run_once(build, seed, replay, opts.check_serializability, check)
            .failed;
      };
      std::size_t lo = 0;
      std::size_t hi = choices.size();
      if (fails_at(0)) {
        hi = 0;
      } else {
        while (lo + 1 < hi) {
          const std::size_t mid = lo + (hi - lo) / 2;
          if (fails_at(mid)) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
      }
      if (hi < choices.size() && !fails_at(hi)) {
        hi = choices.size();  // non-monotone failure: keep the full trace
      }
      choices.resize(hi);
    }
    result.minimized_choices = choices;
    result.first_failure =
        "deterministic seed " + std::to_string(seed) + ": " + v.reason +
        "\n  reproduce with SchedulerOptions::deterministic_seed = " +
        std::to_string(seed) + "\n  minimized schedule (" +
        std::to_string(choices.size()) +
        " forced decisions): " + render_choices(choices);
  }
  result.distinct_traces = hashes.size();
  return result;
}

ReplayResult replay_trace(const BuildFn& build,
                          const std::vector<std::uint32_t>& choices,
                          std::int64_t seed) {
  ReplayResult out;
  RecordingDecisionSource src(choices, nullptr);
  std::unique_ptr<Runtime> rt = build(seed);
  rt->scheduler().set_decision_source(&src);
  out.report = rt->run();
  out.check = rt->check_history();
  out.choices = src.choices();
  return out;
}

namespace {

/// DPOR-lite: choosing candidate `alt` at decision `i` (instead of where
/// its process actually ran next, at `j`) yields an equivalent execution
/// when step `j` commutes with every step in [i, j). If the process never
/// ran again, nothing is known — explore it.
bool can_prune(const std::vector<RecordingDecisionSource::Decision>& log,
               std::size_t i, std::uint32_t alt) {
  const ProcessId q = log[i].ready[alt];
  for (std::size_t j = i + 1; j < log.size(); ++j) {
    if (log[j].step.pid != q) continue;
    for (std::size_t k = i; k < j; ++k) {
      if (log[k].step.dependent(log[j].step)) return false;
    }
    return true;
  }
  return false;
}

}  // namespace

ExploreResult explore_schedules(const BuildFn& build, ExploreOptions opts,
                                const CheckFn& check) {
  ExploreResult result;
  std::vector<std::vector<std::uint32_t>> frontier;
  frontier.push_back({});

  while (!frontier.empty()) {
    if (result.schedules_run >= opts.max_schedules) return result;
    const std::vector<std::uint32_t> prefix = std::move(frontier.back());
    frontier.pop_back();

    RecordingDecisionSource src(prefix, nullptr);
    const Verdict v =
        run_once(build, 0, src, opts.check_serializability, check);
    ++result.schedules_run;
    if (v.failed) {
      ++result.failures;
      if (result.first_failure.empty()) {
        result.first_failure =
            v.reason + "\n  schedule: " + render_choices(src.choices());
        result.failing_choices = src.choices();
      }
    }

    // Branch only past the forced prefix: alternatives at earlier
    // decisions were enqueued when their own prefix was generated, so
    // every prefix is explored exactly once.
    const auto& log = src.log();
    const std::size_t first_free = prefix.size();
    for (std::size_t i = log.size(); i-- > first_free;) {
      if (i >= opts.max_depth) continue;
      for (std::uint32_t a = 0;
           a < static_cast<std::uint32_t>(log[i].ready.size()); ++a) {
        if (a == log[i].chosen) continue;
        if (opts.prune_commuting && can_prune(log, i, a)) {
          ++result.schedules_pruned;
          continue;
        }
        std::vector<std::uint32_t> next;
        next.reserve(i + 1);
        for (std::size_t k = 0; k < i; ++k) next.push_back(log[k].chosen);
        next.push_back(a);
        frontier.push_back(std::move(next));
      }
    }
  }
  result.exhausted = true;
  return result;
}

}  // namespace sdl::sim
