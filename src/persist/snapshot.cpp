#include "persist/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/codec.hpp"

namespace sdl::persist {

namespace {

constexpr char kSnapMagic[8] = {'S', 'D', 'L', 'S', 'N', 'P', '1', '\n'};

bool write_fd_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string snapshot_file_name(std::uint64_t barrier_seq) {
  char buf[44];
  std::snprintf(buf, sizeof buf, "snap-%020llu.snap",
                static_cast<unsigned long long>(barrier_seq));
  return buf;
}

bool write_snapshot(const std::string& dir, std::uint32_t shard_count,
                    std::uint64_t barrier_seq,
                    const std::vector<std::pair<TupleId, Tuple>>& records,
                    FaultInjector* faults) {
  std::string payload;
  codec::put_u32(payload, shard_count);
  codec::put_u64(payload, barrier_seq);
  codec::put_varint(payload, records.size());
  for (const auto& [id, tuple] : records) {
    codec::put_u64(payload, id.bits());
    codec::put_tuple(payload, tuple);
  }

  std::string file(kSnapMagic, sizeof kSnapMagic);
  codec::put_u32(file, codec::crc32(payload.data(), payload.size()));
  file += payload;

  const std::string final_path = dir + "/" + snapshot_file_name(barrier_seq);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;

  if (faults != nullptr &&
      faults->decide(FaultPoint::SnapshotWrite) == FaultAction::Kill) {
    // Simulated crash mid-snapshot: a deterministic prefix reaches the
    // .tmp and the rename never happens — recovery must ignore it and
    // fall back to the previous snapshot (or none) plus the full WAL.
    const std::uint64_t torn =
        faults->jitter_us(static_cast<std::uint64_t>(file.size() - 1));
    write_fd_all(fd, file.data(), static_cast<std::size_t>(torn));
    ::close(fd);
    return false;
  }

  const bool wrote = write_fd_all(fd, file.data(), file.size());
  if (wrote) ::fsync(fd);
  ::close(fd);
  if (!wrote) {
    ::unlink(tmp_path.c_str());
    return false;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return false;
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

SnapshotReadResult read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SnapshotReadResult result;
    result.detail = "cannot open";
    return result;
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("snapshot: read failed: " + path);
  return parse_snapshot(data);
}

SnapshotReadResult parse_snapshot(std::string_view data) {
  SnapshotReadResult result;
  if (data.size() < sizeof kSnapMagic + 4 ||
      std::memcmp(data.data(), kSnapMagic, sizeof kSnapMagic) != 0) {
    result.detail = "bad snapshot header";
    return result;
  }
  codec::Reader hr(data.data() + sizeof kSnapMagic, 4);
  const std::uint32_t crc = hr.get_u32();
  const char* payload = data.data() + sizeof kSnapMagic + 4;
  const std::size_t payload_size = data.size() - sizeof kSnapMagic - 4;
  if (codec::crc32(payload, payload_size) != crc) {
    result.detail = "snapshot crc mismatch";
    return result;
  }

  codec::Reader r(payload, payload_size);
  result.shard_count = r.get_u32();
  result.barrier_seq = r.get_u64();
  const std::uint64_t count = r.get_varint();
  if (!r.ok() || count > r.remaining()) {
    result.detail = "snapshot payload truncated";
    return result;
  }
  result.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t bits = r.get_u64();
    Tuple t = r.get_tuple();
    if (!r.ok()) {
      result.records.clear();
      result.detail = "snapshot record undecodable";
      return result;
    }
    result.records.emplace_back(TupleId(static_cast<ProcessId>(bits >> 40), bits),
                                std::move(t));
  }
  if (!r.at_end()) {
    result.records.clear();
    result.detail = "snapshot trailing bytes";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace sdl::persist
