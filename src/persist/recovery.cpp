#include "persist/recovery.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <stdexcept>

namespace sdl::persist {

namespace fs = std::filesystem;

namespace {

/// Parses "<prefix><decimal-seq><suffix>" file names; returns false for
/// anything else (orphan .tmp files, foreign files in the directory).
bool parse_numbered(const std::string& name, const char* prefix,
                    const char* suffix, std::uint64_t* seq) {
  const std::size_t plen = std::strlen(prefix);
  const std::size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return false;
  if (name.compare(0, plen, prefix) != 0) return false;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
  const std::string digits = name.substr(plen, name.size() - plen - slen);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *seq = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

}  // namespace

RecoveredState replay(const std::string& dir) {
  RecoveredState state;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    state.notes.push_back("no durable directory: fresh start");
    return state;
  }

  std::vector<std::uint64_t> snap_barriers;
  std::vector<std::uint64_t> wal_starts;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    std::uint64_t seq = 0;
    if (parse_numbered(name, "snap-", ".snap", &seq)) {
      snap_barriers.push_back(seq);
    } else if (parse_numbered(name, "wal-", ".wal", &seq)) {
      wal_starts.push_back(seq);
    }
  }
  std::sort(snap_barriers.rbegin(), snap_barriers.rend());
  std::sort(wal_starts.begin(), wal_starts.end());

  // 1. Newest snapshot whose CRC validates wins; torn ones fall back.
  std::map<std::uint64_t, Tuple> live;  // id bits -> tuple, deterministic order
  for (const std::uint64_t barrier : snap_barriers) {
    const std::string path = dir + "/" + snapshot_file_name(barrier);
    SnapshotReadResult snap = read_snapshot(path);
    if (!snap.ok) {
      state.notes.push_back("snapshot " + snapshot_file_name(barrier) +
                            " rejected: " + snap.detail);
      continue;
    }
    state.used_snapshot = true;
    state.snapshot_barrier = snap.barrier_seq;
    state.shard_count = snap.shard_count;
    state.snapshot_ids.reserve(snap.records.size());
    for (auto& [id, tuple] : snap.records) {
      state.snapshot_ids.push_back(id);
      live.emplace(id.bits(), std::move(tuple));
    }
    state.notes.push_back("loaded " + snapshot_file_name(barrier) + " (" +
                          std::to_string(state.snapshot_ids.size()) +
                          " instances)");
    break;
  }
  state.last_seq = state.snapshot_barrier;

  // 2. Chain WAL segments: start at the segment covering barrier+1, keep
  // the longest clean strictly-sequential prefix.
  std::uint64_t expected = state.snapshot_barrier + 1;
  bool stopped = false;
  for (std::size_t i = 0; i < wal_starts.size(); ++i) {
    const std::uint64_t start = wal_starts[i];
    // Skip segments wholly covered by the snapshot: a segment is stale if
    // the NEXT segment also starts at or before the barrier+1 point.
    if (i + 1 < wal_starts.size() && wal_starts[i + 1] <= expected) continue;
    if (stopped) {
      state.notes.push_back(wal_segment_name(start) +
                            " unreachable past corruption: ignored");
      continue;
    }
    const std::string path = dir + "/" + wal_segment_name(start);
    WalReadResult seg = read_wal_segment(path);
    if (seg.format_mismatch) {
      // Distinct from corruption: the segment is intact but written by a
      // different format revision. Recovery cannot decode past it, but
      // the file must be preserved untouched (clean_directory honors the
      // same flag).
      state.notes.push_back(wal_segment_name(start) +
                            " format mismatch: " + seg.detail +
                            " — stopping (file preserved)");
      stopped = true;
      continue;
    }
    if (!seg.header_ok) {
      // An empty/headerless trailing segment (crash at rotate) is benign;
      // anything with content behind it cannot be trusted.
      state.notes.push_back(wal_segment_name(start) + ": " +
                            (seg.detail.empty() ? "unreadable" : seg.detail));
      stopped = true;
      continue;
    }
    if (state.shard_count == 0) state.shard_count = seg.shard_count;
    if (seg.shard_count != state.shard_count) {
      state.notes.push_back(wal_segment_name(start) +
                            ": geometry mismatch (shard_count " +
                            std::to_string(seg.shard_count) + " vs " +
                            std::to_string(state.shard_count) + "): ignored");
      stopped = true;
      continue;
    }
    for (WalCommit& c : seg.commits) {
      if (c.seq < expected) continue;  // covered by the snapshot
      if (c.seq != expected) {
        state.notes.push_back("sequence gap at " + std::to_string(c.seq) +
                              " (expected " + std::to_string(expected) +
                              "): stopping");
        stopped = true;
        break;
      }
      state.commits.push_back(std::move(c));
      ++expected;
    }
    if (seg.corrupt) {
      const std::uint64_t file_size = fs::file_size(path);
      state.dropped_bytes += file_size - seg.valid_bytes;
      state.notes.push_back(wal_segment_name(start) + ": " + seg.detail +
                            " — dropped " +
                            std::to_string(file_size - seg.valid_bytes) +
                            " tail bytes");
      stopped = true;
    }
  }
  state.last_seq = expected - 1;

  // Replication watermark: newest marker value, plus one leader sequence
  // per re-logged commit that survived after it (see repl_applied_seq).
  // No marker at all means no provable coverage — report 0 and let the
  // leader re-seed/resend; the apply path is redelivery-idempotent.
  {
    bool any_mark = false;
    std::uint64_t last_mark = 0;
    std::uint64_t commits_after_mark = 0;
    for (const WalCommit& c : state.commits) {
      if (c.repl_mark != 0) {
        any_mark = true;
        last_mark = c.repl_mark;
        commits_after_mark = 0;
      } else if (any_mark) {
        ++commits_after_mark;
      }
    }
    state.repl_applied_seq = any_mark ? last_mark + commits_after_mark : 0;
  }

  // 3. Apply the surviving commits over the snapshot. Replication
  // watermark markers carry no effects and no-op here by construction.
  for (const WalCommit& c : state.commits) {
    for (const TupleId id : c.retracts) live.erase(id.bits());
    for (const auto& [id, tuple] : c.asserts) live.emplace(id.bits(), tuple);
  }
  state.live.reserve(live.size());
  for (auto& [bits, tuple] : live) {
    state.live.emplace_back(TupleId(static_cast<ProcessId>(bits >> 40), bits),
                            std::move(tuple));
  }
  state.notes.push_back("recovered " + std::to_string(state.live.size()) +
                        " instances through seq " +
                        std::to_string(state.last_seq) + " (" +
                        std::to_string(state.commits.size()) +
                        " WAL commits replayed)");
  return state;
}

void apply(Dataspace& space, const RecoveredState& state) {
  if (state.shard_count == 0) return;  // fresh start: nothing durable
  if (space.shard_count() != state.shard_count) {
    throw std::invalid_argument(
        "recovery: dataspace shard_count " +
        std::to_string(space.shard_count()) +
        " differs from durable geometry " + std::to_string(state.shard_count));
  }
  for (const auto& [id, tuple] : state.live) space.restore(tuple, id);
}

CheckReport verify_recovery(const RecoveredState& state) {
  std::vector<HistoryEntry> entries;
  entries.reserve(state.commits.size());
  for (const WalCommit& c : state.commits) {
    // Watermark markers are metadata, not commits: no reads, no effects —
    // nothing for the serializability checker to validate.
    if (c.repl_mark != 0) continue;
    HistoryEntry e;
    e.seq = c.seq;
    e.owner = c.owner;
    e.consensus_fire = c.fire;
    // The WAL stores the effect set, not the read set; every retracted
    // instance was necessarily read, which is exactly the dependency the
    // replay needs to validate the witness order.
    e.reads = c.retracts;
    e.retracts = c.retracts;
    e.asserts.reserve(c.asserts.size());
    for (const auto& [id, tuple] : c.asserts) e.asserts.push_back(id);
    e.label = "wal:" + std::to_string(c.seq);
    entries.push_back(std::move(e));
  }
  std::vector<TupleId> final_ids;
  final_ids.reserve(state.live.size());
  for (const auto& [id, tuple] : state.live) final_ids.push_back(id);
  return check_history(state.snapshot_ids, std::move(entries), final_ids);
}

}  // namespace sdl::persist
