// Durability subsystem facade (tentpole of this PR).
//
// PersistManager owns the write-ahead log and the snapshot policy for one
// runtime. Lifecycle:
//
//   open    — replay(dir) reconstructs the committed state, then the
//             directory is CLEANED for writing: torn segment tails are
//             physically truncated at the first corrupt record, segments
//             unreachable past a corruption/gap are deleted, orphan .tmp
//             files are removed. The WAL reopens at last_seq + 1. The
//             caller applies recovered() into its dataspace before
//             starting any process.
//   commit  — engines call log_commit while the commit's locks are held
//             (wal.hpp explains why that ordering is the recovery
//             correctness argument). Group commit batches fsyncs.
//   snapshot— every `snapshot_every` logged commits (0 = never), the
//             caller's next maybe_snapshot runs the barrier protocol:
//             under total exclusion collect every instance and rotate the
//             WAL, then durably write the snapshot OUTSIDE the lock and
//             only then delete the segments and snapshots it supersedes.
//             Commits logged while the snapshot file is being written go
//             to the fresh segment (seq > barrier) — nothing is lost.
//
// PersistManager deliberately knows nothing about the engines: the
// snapshot entry points take an ExclusiveRunner callback (Runtime passes
// Engine::exclusive) so sdl_persist never depends on sdl_txn.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "persist/recovery.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"
#include "space/dataspace.hpp"

namespace sdl::persist {

/// Durability configuration (RuntimeOptions::persist).
struct PersistOptions {
  /// Directory for WAL segments and snapshots. Empty = durability off.
  std::string dir;
  /// Commits per fsync batch: 1 = every commit durable before ack
  /// (safest), N = group commit (E18's dial), 0 = never fsync (OS decides).
  std::uint64_t fsync_every = 1;
  /// Logged commits between automatic snapshots; 0 = only explicit
  /// snapshot_now() calls.
  std::uint64_t snapshot_every = 0;
  /// Replication origin id stamped into every WAL segment header this
  /// node writes (0 = unreplicated single-node default). A follower
  /// replaying shipped segments can then attribute the log to its leader.
  std::uint64_t node_id = 0;

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

class PersistManager {
 public:
  /// Runs a total-exclusion section (Runtime passes Engine::exclusive).
  using ExclusiveRunner = std::function<void(const std::function<void()>&)>;

  /// Mutating open: recovers `opts.dir` (creating it if absent), cleans
  /// torn/unreachable files, and opens the WAL for appending.
  /// Throws std::invalid_argument when the durable geometry differs from
  /// `shard_count` — recovered TupleIds are only collision-free under the
  /// geometry they were created with.
  PersistManager(PersistOptions opts, std::uint32_t shard_count);

  PersistManager(const PersistManager&) = delete;
  PersistManager& operator=(const PersistManager&) = delete;

  /// What recovery reconstructed at open. Runtime applies this into the
  /// dataspace (recovery::apply) before any process runs.
  [[nodiscard]] const RecoveredState& recovered() const { return recovered_; }

  /// Logs one commit's effect set. MUST be called with the commit's
  /// engine locks held. Returns the WAL sequence, or 0 when the append
  /// was not acknowledged (crashed writer — the in-memory run continues,
  /// but the commit is not durable). `fire` groups a consensus composite
  /// into one atomic record (0 = independent commit).
  std::uint64_t log_commit(ProcessId owner, std::uint64_t fire,
                           const std::vector<TupleId>& retracts,
                           const std::vector<std::pair<TupleId, Tuple>>& asserts);

  /// Replication (follower side): appends a leader-seq watermark marker
  /// (WalCommit::repl_mark) covering everything re-logged so far. Does
  /// NOT count toward the snapshot interval — markers are metadata, not
  /// commits. Returns the local sequence, or 0 on a dead writer.
  std::uint64_t log_repl_mark(std::uint64_t mark) {
    return wal_->append_repl_mark(mark);
  }

  /// True when snapshot_every is configured and enough commits have been
  /// logged — the scheduler-side hook for calling maybe_snapshot without
  /// taking a lock on the common path.
  [[nodiscard]] bool snapshot_due() const;

  /// Runs the snapshot barrier protocol if one is due (no-op otherwise).
  void maybe_snapshot(const Dataspace& space, const ExclusiveRunner& exclusive);

  /// Unconditional snapshot (teardown, tests). Returns true when the
  /// snapshot became durable; false on a crashed snapshot writer (the WAL
  /// keeps the run recoverable regardless).
  bool snapshot_now(const Dataspace& space, const ExclusiveRunner& exclusive);

  /// Forces an fsync of any batched appends (teardown).
  void sync();

  /// Arms/disarms WalAppend + SnapshotWrite fault points (null disarms).
  void set_fault_injector(FaultInjector* f);

  /// Arms the WAL append/flush and snapshot-duration instruments (null
  /// disarms; also re-gated on the SDL_OBS runtime flag per operation).
  void set_metrics(obs::RuntimeMetrics* m);

  /// Arms the overload layer's WAL group-commit batch cap (null disarms).
  void set_overload(control::OverloadControl* c);

  /// Replication hook: fires on every durable-watermark advance (see
  /// WalWriter::set_durable_listener for the calling contract).
  void set_durable_listener(std::function<void(std::uint64_t)> fn);

  /// Highest sequence the replication tailer may ship (durable
  /// watermark; the append watermark when fsync_every == 0).
  [[nodiscard]] std::uint64_t shippable_seq() const {
    return wal_->shippable_seq();
  }

  /// Barrier of the newest durable snapshot (0 = none yet). Segments at
  /// or below this are pruned: a follower needing seq <= barrier must be
  /// seeded from the snapshot file instead of the WAL tail.
  [[nodiscard]] std::uint64_t last_snapshot_barrier() const {
    return last_snapshot_barrier_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool wal_alive() const { return wal_->alive(); }

  struct Stats {
    std::uint64_t logged_commits = 0;   // acknowledged WAL appends
    std::uint64_t last_seq = 0;         // last acknowledged sequence
    std::uint64_t syncs = 0;            // fsync batches issued
    std::uint64_t snapshots_written = 0;
    std::uint64_t snapshot_failures = 0;
    std::uint64_t recovered_instances = 0;
    std::uint64_t recovered_commits = 0;  // WAL commits replayed at open
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const PersistOptions& options() const { return opts_; }

 private:
  void clean_directory();

  const PersistOptions opts_;
  const std::uint32_t shard_count_;
  RecoveredState recovered_;
  std::unique_ptr<WalWriter> wal_;
  FaultInjector* faults_ = nullptr;
  obs::RuntimeMetrics* metrics_ = nullptr;

  std::mutex snapshot_mutex_;  // one snapshot at a time
  std::atomic<std::uint64_t> commits_since_snapshot_{0};
  std::atomic<std::uint64_t> snapshots_written_{0};
  std::atomic<std::uint64_t> snapshot_failures_{0};
  std::atomic<std::uint64_t> last_snapshot_barrier_{0};
  std::atomic<bool> snapshots_dead_{false};  // SnapshotWrite kill fired
};

}  // namespace sdl::persist
