// Snapshots: a full serialization of the dataspace at a WAL barrier.
//
// A snapshot captures every resident instance (id + tuple) at the moment
// the WAL rotated — the `barrier_seq` stamped in its header is the last
// commit sequence the snapshot already reflects, so recovery loads the
// snapshot and replays only WAL records with seq > barrier_seq. Capture
// runs inside Engine::exclusive (every shard lock held), which makes the
// (snapshot, barrier) pair consistent by construction.
//
// Durability protocol: payload is written to "<name>.tmp", fsynced,
// renamed over the final name, and the directory is fsynced — a crash at
// any point leaves either the complete new snapshot or the previous state
// (an orphan .tmp is ignored by recovery). The whole file is covered by
// one CRC32 so a torn rename-target is detected and recovery falls back
// to an older snapshot plus a longer WAL chain.
//
// The FaultInjector's SnapshotWrite point simulates a crash mid-write:
// a deterministic prefix of the payload reaches the .tmp, no rename
// happens, and the writer reports failure.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/tuple.hpp"
#include "fault/fault.hpp"

namespace sdl::persist {

/// Parse of one snapshot file. `ok` is false for missing, torn, or
/// corrupt files (detail says why) — recovery treats those as absent.
struct SnapshotReadResult {
  bool ok = false;
  std::uint32_t shard_count = 0;
  std::uint64_t barrier_seq = 0;
  std::vector<std::pair<TupleId, Tuple>> records;
  std::string detail;
};

/// Snapshot file name for a given barrier ("snap-<seq>.snap").
std::string snapshot_file_name(std::uint64_t barrier_seq);

/// Writes a snapshot of `records` to dir/snap-<barrier>.snap via the
/// tmp+fsync+rename+dir-fsync protocol. Returns false when the write did
/// not become durable (I/O error, or a SnapshotWrite kill fault — see
/// file comment). `faults` may be null.
bool write_snapshot(const std::string& dir, std::uint32_t shard_count,
                    std::uint64_t barrier_seq,
                    const std::vector<std::pair<TupleId, Tuple>>& records,
                    FaultInjector* faults);

/// Reads and validates one snapshot file. Never throws on bad content;
/// throws std::runtime_error only if the file exists but cannot be read.
SnapshotReadResult read_snapshot(const std::string& path);

/// Validates and decodes snapshot-file bytes already in memory — the ONE
/// parse path shared by read_snapshot (recovery) and the replication
/// stream, which ships the raw snapshot file to seed a follower joining
/// behind the retained WAL window.
SnapshotReadResult parse_snapshot(std::string_view data);

}  // namespace sdl::persist
