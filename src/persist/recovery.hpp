// Crash recovery: snapshot + WAL replay back to the committed state.
//
// `replay(dir)` reconstructs the exact committed pre-crash state from the
// durable files alone:
//   1. pick the NEWEST snapshot whose CRC validates (a torn or partially
//      renamed snapshot falls back to the next older one, or none);
//   2. chain WAL segments starting at the segment covering barrier+1 and
//      keep the longest clean prefix — reading stops at the first corrupt
//      or torn record (truncate-at-first-corrupt), at a segment-header
//      failure, or at a sequence that is not exactly last+1 (a gap means
//      a lost intermediate segment: nothing after it can be trusted);
//   3. apply the surviving commits, in sequence order, over the snapshot.
//
// Because WAL append order is a serialization witness (see wal.hpp), the
// surviving prefix is serially consistent by construction — and
// `verify_recovery` PROVES it per run by replaying that prefix through the
// src/check serializability checker (ISSUE 3) against the recovered final
// state: any lost acknowledged commit or resurrected torn commit surfaces
// as a FinalStateDivergence.
//
// replay() never mutates the directory. The physical cleanup (truncating
// a torn segment tail, deleting unreachable later segments) is done by
// PersistManager when it reopens the directory for writing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"
#include "space/dataspace.hpp"

namespace sdl::persist {

/// Everything recovery learned from the durable directory.
struct RecoveredState {
  /// Geometry stamped in the durable headers; 0 when the directory holds
  /// no usable snapshot or WAL segment (fresh start).
  std::uint32_t shard_count = 0;
  /// True when a snapshot was loaded; `snapshot_barrier` is its barrier.
  bool used_snapshot = false;
  std::uint64_t snapshot_barrier = 0;
  /// Instance ids the snapshot contributed (the checker's initial state).
  std::vector<TupleId> snapshot_ids;
  /// The surviving WAL suffix (seq > snapshot_barrier), sequence order.
  std::vector<WalCommit> commits;
  /// Final recovered state: every live instance after applying `commits`
  /// over the snapshot.
  std::vector<std::pair<TupleId, Tuple>> live;
  /// Last committed sequence recovered (== snapshot_barrier when the WAL
  /// suffix is empty); the reopened WAL continues at last_seq + 1.
  std::uint64_t last_seq = 0;
  /// Replication: the leader-seq watermark this directory's state covers,
  /// restored from the newest durable repl_mark record plus one per
  /// re-logged commit after it (re-logs are 1:1 with leader sequences, so
  /// a marker torn off the tail still yields the exact watermark; the
  /// multi-sequence snapshot-reset frame only ever UNDERestimates, which
  /// the leader answers with an idempotent snapshot re-seed). 0 when the
  /// directory holds no marker — a fresh follower, or a node that was
  /// never one.
  std::uint64_t repl_applied_seq = 0;
  /// Bytes of torn/corrupt WAL tail that were dropped.
  std::uint64_t dropped_bytes = 0;
  /// Human-readable log of recovery decisions (which snapshot, which
  /// segments, where reading stopped and why).
  std::vector<std::string> notes;
};

/// Reconstructs the committed state from `dir`. Read-only. An empty or
/// absent directory yields a fresh RecoveredState (shard_count 0).
/// Throws std::runtime_error only on I/O errors reading existing files.
RecoveredState replay(const std::string& dir);

/// Loads a recovered state into an EMPTY dataspace via Dataspace::restore.
/// Throws std::invalid_argument if the dataspace geometry differs from
/// state.shard_count (TupleId sequences are shard-striped — restoring
/// into a different geometry could collide fresh ids with restored ones).
void apply(Dataspace& space, const RecoveredState& state);

/// Closes the loop with the ISSUE 3 checker: replays `state.commits` as a
/// serial history over the snapshot ids and checks the result — including
/// final-state equivalence against `state.live`. ok() means the recovered
/// dataspace is exactly the serial replay of the surviving WAL prefix.
CheckReport verify_recovery(const RecoveredState& state);

}  // namespace sdl::persist
