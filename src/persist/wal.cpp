#include "persist/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "core/codec.hpp"

namespace sdl::persist {

namespace {

// Durable format constants — append-only, never renumber.
// v2 ("SDLWAL2\n") adds an explicit format-version field and the origin
// node id to the header payload; v1 ("SDLWAL1\n") is recognized only to
// be rejected as a format mismatch (never corruption).
constexpr char kWalMagic[8] = {'S', 'D', 'L', 'W', 'A', 'L', '2', '\n'};
constexpr char kWalMagicV1[8] = {'S', 'D', 'L', 'W', 'A', 'L', '1', '\n'};
constexpr std::size_t kHeaderSize = kWalHeaderSize;  // magic, payload, crc
constexpr std::size_t kHeaderPayload = 24;  // version, shards, seq, origin
constexpr std::uint8_t kRecordCommit = 1;
// Follower-only watermark record (WalCommit::repl_mark). Additive within
// the v2 format: leader segments never contain it, so cross-node shipped
// logs stay decodable by any v2 reader; only a follower's OWN directory
// carries these, and the binary that wrote them reads them back.
constexpr std::uint8_t kRecordReplMark = 2;
// A frame length beyond this is corruption, not a huge commit: even a
// consensus composite over thousands of tuples stays far below it.
constexpr std::uint32_t kMaxRecordLen = 1u << 30;
// Preallocation granularity: keeping writes inside fallocated space makes
// fdatasync a pure data flush (no extent/size journal commit), which on
// ext4 halves the per-sync latency and CPU. ~20k typical commit frames.
constexpr std::uint64_t kPreallocChunk = 1u << 20;

std::string header_bytes(std::uint32_t shard_count, std::uint64_t start_seq,
                         std::uint64_t origin_node) {
  std::string out(kWalMagic, sizeof kWalMagic);
  std::string payload;
  codec::put_u32(payload, kWalFormatVersion);
  codec::put_u32(payload, shard_count);
  codec::put_u64(payload, start_seq);
  codec::put_u64(payload, origin_node);
  out += payload;
  codec::put_u32(out, codec::crc32(payload.data(), payload.size()));
  return out;
}

bool decode_commit(std::string_view payload, WalCommit* out) {
  codec::Reader r(payload);
  const std::uint8_t kind = r.get_u8();
  if (kind == kRecordReplMark) {
    out->seq = r.get_varint();
    out->repl_mark = r.get_varint();
    return r.ok() && r.at_end() && out->repl_mark != 0;
  }
  if (kind != kRecordCommit) return false;
  out->seq = r.get_varint();
  out->owner = static_cast<ProcessId>(r.get_varint());
  out->fire = r.get_varint();
  const std::uint64_t nretracts = r.get_varint();
  if (!r.ok() || nretracts > r.remaining()) return false;
  out->retracts.reserve(static_cast<std::size_t>(nretracts));
  for (std::uint64_t i = 0; i < nretracts && r.ok(); ++i) {
    const std::uint64_t bits = r.get_u64();
    out->retracts.emplace_back(static_cast<ProcessId>(bits >> 40), bits);
  }
  const std::uint64_t nasserts = r.get_varint();
  if (!r.ok() || nasserts > r.remaining()) return false;
  out->asserts.reserve(static_cast<std::size_t>(nasserts));
  for (std::uint64_t i = 0; i < nasserts && r.ok(); ++i) {
    const std::uint64_t bits = r.get_u64();
    const TupleId id(static_cast<ProcessId>(bits >> 40), bits);
    Tuple t = r.get_tuple();
    if (!r.ok()) break;
    out->asserts.emplace_back(id, std::move(t));
  }
  // Trailing garbage inside a CRC-clean frame would mean an encoder bug,
  // not disk corruption; reject it all the same.
  return r.ok() && r.at_end();
}

}  // namespace

std::string wal_segment_name(std::uint64_t start_seq) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "wal-%020llu.wal",
                static_cast<unsigned long long>(start_seq));
  return buf;
}

WalFrameParse parse_wal_frame(std::string_view data) {
  WalFrameParse out;
  if (data.size() < 8) {
    // A crash can land the file size anywhere inside the preallocated
    // region, including 1-7 bytes past the last frame. All-zero short
    // tails are that padding — clean end-of-log, same as a full [0][0]
    // marker below. Only a NONZERO partial header is a torn write (or,
    // for a live tail, a frame still being flushed).
    for (const char c : data) {
      if (c != '\0') {
        out.status = WalFrameStatus::Torn;
        out.detail = "torn frame header";
        return out;
      }
    }
    out.status = WalFrameStatus::End;
    return out;
  }
  codec::Reader fr(data.data(), 8);
  const std::uint32_t len = fr.get_u32();
  const std::uint32_t crc = fr.get_u32();
  if (len == 0 && crc == 0) {
    // Preallocation padding: the writer fallocates segment space ahead
    // of the data, so a crashed segment ends in zeros. A real frame's
    // payload is never empty (it always carries a record kind byte), so
    // [0][0] unambiguously marks clean end-of-log — not corruption.
    out.status = WalFrameStatus::End;
    return out;
  }
  if (len > kMaxRecordLen) {
    out.status = WalFrameStatus::Corrupt;
    out.detail = "frame length " + std::to_string(len) + " exceeds cap";
    return out;
  }
  if (data.size() - 8 < len) {
    out.status = WalFrameStatus::Torn;
    out.detail = "torn record";
    return out;
  }
  const std::string_view payload(data.data() + 8, len);
  if (codec::crc32(payload.data(), payload.size()) != crc) {
    out.status = WalFrameStatus::Corrupt;
    out.detail = "record crc mismatch";
    return out;
  }
  if (!decode_commit(payload, &out.commit)) {
    out.status = WalFrameStatus::Corrupt;
    out.detail = "undecodable record";
    return out;
  }
  out.status = WalFrameStatus::Ok;
  out.size = 8 + len;
  return out;
}

WalReadResult read_wal_segment(const std::string& path) {
  WalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("wal: cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("wal: read failed: " + path);

  if (data.empty()) {
    // A segment created by rotate()/open that never got its header bytes
    // (crash between creat and write). Nothing durable was lost.
    result.detail = "empty segment";
    return result;
  }
  if (data.size() >= sizeof kWalMagicV1 &&
      std::memcmp(data.data(), kWalMagicV1, sizeof kWalMagicV1) == 0) {
    // A v1 segment (pre format-version header). Its records are intact —
    // this binary just does not decode that layout. Distinct rejection:
    // never classified as corrupt, never truncated.
    result.format_mismatch = true;
    result.format_version = 1;
    result.detail = "segment format version 1 (binary speaks version " +
                    std::to_string(kWalFormatVersion) + ")";
    return result;
  }
  if (data.size() < kHeaderSize ||
      std::memcmp(data.data(), kWalMagic, sizeof kWalMagic) != 0) {
    result.corrupt = true;
    result.detail = "bad segment header";
    return result;
  }
  {
    codec::Reader r(data.data() + sizeof kWalMagic, kHeaderPayload + 4);
    const std::uint32_t version = r.get_u32();
    const std::uint32_t shard_count = r.get_u32();
    const std::uint64_t start_seq = r.get_u64();
    const std::uint64_t origin_node = r.get_u64();
    const std::uint32_t crc = r.get_u32();
    if (crc != codec::crc32(data.data() + sizeof kWalMagic, kHeaderPayload)) {
      result.corrupt = true;
      result.detail = "segment header crc mismatch";
      return result;
    }
    result.format_version = version;
    if (version != kWalFormatVersion) {
      // CRC-clean header from a different (newer) format revision: the
      // payload layout beyond the header is unknown to this binary.
      result.format_mismatch = true;
      result.detail = "segment format version " + std::to_string(version) +
                      " (binary speaks version " +
                      std::to_string(kWalFormatVersion) + ")";
      return result;
    }
    result.header_ok = true;
    result.shard_count = shard_count;
    result.start_seq = start_seq;
    result.origin_node = origin_node;
  }

  std::size_t off = kHeaderSize;
  result.valid_bytes = off;
  while (off < data.size()) {
    WalFrameParse frame = parse_wal_frame(std::string_view(data).substr(off));
    if (frame.status == WalFrameStatus::End) break;
    if (frame.status != WalFrameStatus::Ok) {
      // A torn frame in a file at rest is a crash cut; corrupt is damage.
      // Either way the clean prefix ends here.
      result.corrupt = true;
      result.detail = frame.detail + " at offset " + std::to_string(off);
      break;
    }
    result.offsets.push_back(off);
    result.commits.push_back(std::move(frame.commit));
    off += frame.size;
    result.valid_bytes = off;
  }
  return result;
}

WalWriter::WalWriter(std::string dir, std::uint32_t shard_count,
                     std::uint64_t next_seq, std::uint64_t fsync_every,
                     std::uint64_t origin_node)
    : dir_(std::move(dir)),
      shard_count_(shard_count),
      fsync_every_(fsync_every),
      origin_node_(origin_node),
      next_seq_(next_seq),
      last_appended_(next_seq - 1),
      last_synced_(next_seq - 1) {
  {
    std::scoped_lock lock(mutex_);
    open_segment(next_seq_);
  }
  // Group commit: the fsync runs off the commit path. Committers park
  // frames; the flusher pays the device latency.
  if (fsync_every_ > 1) flusher_ = std::thread([this] { flusher_main(); });
}

WalWriter::~WalWriter() {
  {
    std::unique_lock lock(mutex_);
    if (fd_ >= 0 && !dead_ && fsync_every_ > 0 &&
        (last_synced_ < last_appended_ || !batch_.empty())) {
      sync_locked(lock);
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::scoped_lock lock(mutex_);
  if (fd_ >= 0) {
    // Clean shutdown drops the preallocation padding: the segment on disk
    // ends exactly at the last frame, as pre-preallocation readers expect.
    if (!dead_ && prealloc_end_ > file_off_) {
      ::ftruncate(fd_, static_cast<off_t>(file_off_));
    }
    ::close(fd_);
    fd_ = -1;
  }
}

void WalWriter::flusher_main() {
  std::unique_lock lock(mutex_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || flush_requested_; });
    if (flush_requested_ && fd_ >= 0 && !dead_ && !batch_.empty()) {
      flush_requested_ = false;
      std::string pending = std::move(batch_);
      batch_.clear();
      const std::uint64_t target = last_appended_;
      // Claim the batch's file range under the mutex (writes stay in
      // sequence order), then pwrite+fdatasync on a dup so rotate()/
      // teardown can close fd_ meanwhile (the duplicated descriptor
      // shares the open file description), and outside the mutex so
      // committers keep parking frames.
      ensure_capacity_locked(pending.size());
      const std::uint64_t off = file_off_;
      file_off_ += pending.size();
      const int dupfd = ::dup(fd_);
      flush_inflight_ = true;
      lock.unlock();
      obs::RuntimeMetrics* const obs_m =
          (metrics_ != nullptr && obs::enabled()) ? metrics_ : nullptr;
      const std::uint64_t t_flush0 = obs_m != nullptr ? obs::now_ns() : 0;
      bool ok = dupfd >= 0;
      if (ok) {
        ok = write_at(dupfd, pending.data(), pending.size(), off);
        if (ok) ::fdatasync(dupfd);
      }
      if (ok && obs_m != nullptr) obs_m->wal_flush_ns->record_since(t_flush0);
      if (dupfd >= 0) ::close(dupfd);
      lock.lock();
      flush_inflight_ = false;
      if (!ok) dead_ = true;
      // An inline sync (barrier, teardown) may have overtaken this batch.
      if (ok && target > last_synced_) {
        last_synced_ = target;
        ++syncs_;
        if (durable_listener_) durable_listener_(last_synced_);
      }
      done_cv_.notify_all();
    } else {
      flush_requested_ = false;
    }
    if (stop_ && !flush_requested_) return;
  }
}

void WalWriter::open_segment(std::uint64_t start_seq) {
  path_ = dir_ + "/" + wal_segment_name(start_seq);
  // No O_TRUNC: after a crash between rotate() and the first append,
  // reopening the same start_seq must continue the existing segment,
  // never wipe it. Writes use pwrite at file_off_ (not O_APPEND — the
  // preallocated file's EOF sits past the data).
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("wal: cannot open segment " + path_ + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    throw std::runtime_error("wal: fstat failed: " + path_);
  }
  // An existing segment was truncated to its clean prefix by recovery
  // (PersistManager::clean_directory), so its size IS the data end.
  file_off_ = static_cast<std::uint64_t>(st.st_size);
  prealloc_end_ = file_off_;
  if (st.st_size == 0) {
    ensure_capacity_locked(kPreallocChunk);
    const std::string header =
        header_bytes(shard_count_, start_seq, origin_node_);
    if (!write_at(fd_, header.data(), header.size(), 0)) {
      throw std::runtime_error("wal: cannot write segment header: " + path_);
    }
    file_off_ = header.size();
    if (fsync_every_ > 0) {
      ::fsync(fd_);
      // Persist the directory entry too, so the segment itself survives a
      // crash right after creation.
      const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
      if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
      }
    }
  }
}

void WalWriter::ensure_capacity_locked(std::size_t need) {
  if (!prealloc_enabled_) return;
  while (file_off_ + need > prealloc_end_) {
    // posix_fallocate extends the file size as well as the allocation, so
    // every later write in the region is non-extending (cheap fdatasync).
    if (::posix_fallocate(fd_, static_cast<off_t>(prealloc_end_),
                          static_cast<off_t>(kPreallocChunk)) != 0) {
      prealloc_enabled_ = false;  // e.g. unsupported fs; writes extend
      return;
    }
    prealloc_end_ += kPreallocChunk;
  }
}

bool WalWriter::write_at(int fd, const char* data, std::size_t size,
                         std::uint64_t off) {
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, data, size, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
    off += static_cast<std::uint64_t>(n);
  }
  return true;
}

std::uint64_t WalWriter::append(
    ProcessId owner, std::uint64_t fire, const std::vector<TupleId>& retracts,
    const std::vector<std::pair<TupleId, Tuple>>& asserts) {
  // Committer-side append latency: mutex wait + encode + write (and, for
  // fsync_every == 1, the inline durable sync). Recorded only for
  // acknowledged appends — the dead/killed paths are not the hot path.
  obs::RuntimeMetrics* const obs_m =
      (metrics_ != nullptr && obs::enabled()) ? metrics_ : nullptr;
  const std::uint64_t t_append0 = obs_m != nullptr ? obs::now_ns() : 0;
  std::unique_lock lock(mutex_);
  if (dead_) return 0;

  // Group-commit backpressure: past the byte cap the parked batch is
  // memory growing at commit speed while draining at device speed — block
  // this committer until the flusher catches up instead of queueing
  // without bound. Checked BEFORE the frame is encoded into the shared
  // scratch buffer: the wait releases mutex_, and another committer
  // entering append() meanwhile would clobber the scratch. The flusher
  // claims (clears) the batch under the mutex and signals done_cv_ after
  // its flush, so the predicate drains promptly.
  if (overload_ != nullptr && fsync_every_ > 1) {
    const std::size_t cap = overload_->options().wal_max_batch_bytes;
    if (cap != 0 && batch_.size() >= cap) {
      overload_->stats().wal_waits.fetch_add(1, std::memory_order_relaxed);
      // A loop, not a one-shot predicate wait: between the flusher's
      // notify and this committer re-acquiring the mutex, its peers can
      // refill the batch past the cap — each pass must re-request a
      // flush, or the last sleeper wedges once those peers exit.
      while (!dead_ && batch_.size() >= cap) {
        flush_requested_ = true;
        unsynced_ = 0;
        cv_.notify_one();
        done_cv_.wait(lock);
      }
      if (dead_) return 0;
    }
  }

  // Encode straight into the reused scratch buffer (its capacity sticks
  // across appends — the encode path is on every commit's critical
  // section, so allocations here are commit latency). The payload starts
  // at byte 8; the frame header is patched in once the length is known.
  std::string& frame = frame_scratch_;
  frame.clear();
  frame.append(8, '\0');
  {
    codec::put_u8(frame, kRecordCommit);
    codec::put_varint(frame, next_seq_);
    codec::put_varint(frame, owner);
    codec::put_varint(frame, fire);
    codec::put_varint(frame, retracts.size());
    for (const TupleId id : retracts) codec::put_u64(frame, id.bits());
    codec::put_varint(frame, asserts.size());
    for (const auto& [id, tuple] : asserts) {
      codec::put_u64(frame, id.bits());
      codec::put_tuple(frame, tuple);
    }
  }
  const std::size_t payload_len = frame.size() - 8;
  std::string header;
  codec::put_u32(header, static_cast<std::uint32_t>(payload_len));
  codec::put_u32(header, codec::crc32(frame.data() + 8, payload_len));
  frame.replace(0, 8, header);

  if (faults_ != nullptr) {
    switch (faults_->decide(FaultPoint::WalAppend)) {
      case FaultAction::Delay:
        faults_->delay();
        break;
      case FaultAction::Kill: {
        // Simulated crash mid-write: the parked group-commit batch plus a
        // deterministic prefix of the new frame is what "reached disk".
        // The commit is NOT acknowledged; recovery must drop the torn
        // record. Batched-but-unsynced acks die with the process — the
        // documented fsync_every > 1 window. Wait out any in-flight flush
        // first so the torn bytes land at a well-defined file position.
        done_cv_.wait(lock, [&] { return !flush_inflight_; });
        std::string pending = std::move(batch_);
        batch_.clear();
        pending += frame;
        const std::uint64_t torn =
            faults_->jitter_us(static_cast<std::uint64_t>(pending.size() - 1));
        write_at(fd_, pending.data(), static_cast<std::size_t>(torn),
                 file_off_);
        if (fd_ >= 0) ::fsync(fd_);
        dead_ = true;
        // Committers blocked on the batch cap key off dead_ too.
        done_cv_.notify_all();
        return 0;
      }
      default:
        break;
    }
  }

  // Group commit: for fsync_every > 1 the committer does NO syscall — the
  // frame parks in user space and the background flusher drains the batch
  // with one pwrite+fdatasync pair (a committer-side write would block on
  // the inode lock behind the in-flight fsync). fsync_every <= 1 writes
  // through immediately (1 also syncs inline: strict durable-before-ack).
  if (fsync_every_ > 1) {
    batch_ += frame;
  } else {
    ensure_capacity_locked(frame.size());
    if (!write_at(fd_, frame.data(), frame.size(), file_off_)) {
      dead_ = true;
      return 0;
    }
    file_off_ += frame.size();
  }
  last_appended_ = next_seq_++;
  ++appended_;
  ++unsynced_;
  bool notify = false;
  if (fsync_every_ == 1) {
    sync_locked(lock);
  } else if (fsync_every_ > 1 && unsynced_ >= fsync_every_) {
    unsynced_ = 0;
    flush_requested_ = true;
    notify = true;
  } else if (fsync_every_ == 0 && durable_listener_) {
    // Durability off: the write-through IS the watermark (see
    // shippable_seq) — replication still makes progress.
    durable_listener_(last_appended_);
  }
  const std::uint64_t acked = last_appended_;
  lock.unlock();
  if (obs_m != nullptr) obs_m->wal_append_ns->record_since(t_append0);
  // Notify after unlock: waking the flusher while holding the mutex would
  // bounce it straight back to sleep (and on one core, preempt the
  // committer mid-critical-section).
  if (notify) cv_.notify_one();
  return acked;
}

std::uint64_t WalWriter::append_repl_mark(std::uint64_t mark) {
  std::unique_lock lock(mutex_);
  if (dead_ || mark == 0) return 0;
  // Tiny metadata frame: skips the group-commit byte cap (a ~20-byte
  // record cannot meaningfully grow the batch) and the WalAppend fault
  // point (which targets commit appends). Ships through the same batch /
  // write-through path so its durability order matches the data's.
  std::string& frame = frame_scratch_;
  frame.clear();
  frame.append(8, '\0');
  codec::put_u8(frame, kRecordReplMark);
  codec::put_varint(frame, next_seq_);
  codec::put_varint(frame, mark);
  const std::size_t payload_len = frame.size() - 8;
  std::string header;
  codec::put_u32(header, static_cast<std::uint32_t>(payload_len));
  codec::put_u32(header, codec::crc32(frame.data() + 8, payload_len));
  frame.replace(0, 8, header);

  if (fsync_every_ > 1) {
    batch_ += frame;
  } else {
    ensure_capacity_locked(frame.size());
    if (!write_at(fd_, frame.data(), frame.size(), file_off_)) {
      dead_ = true;
      return 0;
    }
    file_off_ += frame.size();
  }
  last_appended_ = next_seq_++;
  ++appended_;
  ++unsynced_;
  bool notify = false;
  if (fsync_every_ == 1) {
    sync_locked(lock);
  } else if (fsync_every_ > 1 && unsynced_ >= fsync_every_) {
    unsynced_ = 0;
    flush_requested_ = true;
    notify = true;
  } else if (fsync_every_ == 0 && durable_listener_) {
    durable_listener_(last_appended_);
  }
  const std::uint64_t acked = last_appended_;
  lock.unlock();
  if (notify) cv_.notify_one();
  return acked;
}

void WalWriter::sync_locked(std::unique_lock<std::mutex>& lock) {
  // Fence the flusher first: its batch write must fully precede ours or
  // the frames would interleave out of sequence order.
  done_cv_.wait(lock, [&] { return !flush_inflight_; });
  if (fd_ < 0 || dead_) return;
  obs::RuntimeMetrics* const obs_m =
      (metrics_ != nullptr && obs::enabled()) ? metrics_ : nullptr;
  const std::uint64_t t_flush0 = obs_m != nullptr ? obs::now_ns() : 0;
  if (!batch_.empty()) {
    std::string pending = std::move(batch_);
    batch_.clear();
    flush_requested_ = false;
    ensure_capacity_locked(pending.size());
    if (!write_at(fd_, pending.data(), pending.size(), file_off_)) {
      dead_ = true;
      done_cv_.notify_all();
      return;
    }
    file_off_ += pending.size();
  }
  ::fdatasync(fd_);
  const bool advanced = last_appended_ > last_synced_;
  last_synced_ = last_appended_;
  unsynced_ = 0;
  ++syncs_;
  if (obs_m != nullptr) obs_m->wal_flush_ns->record_since(t_flush0);
  if (advanced && durable_listener_) durable_listener_(last_synced_);
}

void WalWriter::sync() {
  std::unique_lock lock(mutex_);
  sync_locked(lock);
}

std::uint64_t WalWriter::rotate() {
  std::unique_lock lock(mutex_);
  const std::uint64_t barrier = last_appended_;
  if (dead_) return barrier;
  sync_locked(lock);
  if (dead_) return barrier;
  // Trim the padding so the closed segment ends at its last frame (the
  // snapshot barrier makes this segment immutable from here on).
  if (prealloc_end_ > file_off_) {
    ::ftruncate(fd_, static_cast<off_t>(file_off_));
    if (fsync_every_ > 0) ::fsync(fd_);
  }
  ::close(fd_);
  fd_ = -1;
  open_segment(barrier + 1);
  return barrier;
}

bool WalWriter::alive() const {
  std::scoped_lock lock(mutex_);
  return !dead_;
}

std::uint64_t WalWriter::last_appended() const {
  std::scoped_lock lock(mutex_);
  return last_appended_;
}

std::uint64_t WalWriter::last_synced() const {
  std::scoped_lock lock(mutex_);
  return last_synced_;
}

std::uint64_t WalWriter::shippable_seq() const {
  std::scoped_lock lock(mutex_);
  return fsync_every_ == 0 ? last_appended_ : last_synced_;
}

std::uint64_t WalWriter::appended_commits() const {
  std::scoped_lock lock(mutex_);
  return appended_;
}

std::uint64_t WalWriter::syncs() const {
  std::scoped_lock lock(mutex_);
  return syncs_;
}

}  // namespace sdl::persist
