// Write-ahead log: the durable commit stream (durability tentpole).
//
// Every effectful commit — engine transaction, environment seed, consensus
// composite — appends ONE record while the commit's engine locks are still
// held, carrying the commit's full effect set (retracted instance ids,
// asserted instances with their tuples). The writer assigns the record's
// sequence number under its own mutex inside that critical section, so:
//   * conflicting commits hold a common shard lock across the append —
//     their WAL order IS their serialization order (a valid witness, the
//     same lock-held discipline src/check/history uses);
//   * file order equals sequence order, so a torn tail is exactly a
//     sequence-prefix: recovery that truncates at the first corrupt record
//     recovers a serially-consistent prefix by construction.
//
// Framing: each record is [u32 len][u32 crc32(payload)][payload]; a
// segment starts with a fixed-size header stamping the format version,
// the dataspace geometry (shard_count — TupleId sequences are
// shard-striped, so recovery into a different geometry could collide
// fresh ids with restored ones), the first sequence number the segment
// may contain, and the origin node id (replication: a follower must be
// able to tell whose log it is replaying). A version mismatch is
// reported as `format_mismatch`, distinct from corruption — a newer
// node's segment shipped to an older binary is readable-someday data,
// not damage, and must never be truncated away. Fsync is batched:
// `fsync_every` commits per fsync(2) (1 = group size one, 0 = never), the
// classic group-commit throughput/durability dial experiment E18 measures.
// For fsync_every > 1 committers never issue a syscall at all: frames park
// in a user-space batch and a background flusher thread drains it with one
// pwrite(2)+fdatasync(2) pair per batch (a write by the committer would
// block on the inode lock behind the in-flight fsync). The loss window on
// a crash is the documented "up to one batch plus the flush in flight";
// fsync_every = 1 keeps the strict write+fsync-before-ack path.
//
// Segment space is preallocated in chunks (posix_fallocate), so steady-
// state writes never extend the file and fdatasync skips the extent/size
// journal commit — on ext4 that halves both the latency and the CPU of
// every sync (measured: 245us -> 113us wall, 65us -> 28us CPU). The tail
// of a crashed segment is therefore zero padding; the reader treats a
// [len=0][crc=0] frame header as clean end-of-log (a real frame's payload
// is never empty). Clean shutdown and rotation ftruncate the padding away.
//
// The FaultInjector's WalAppend point simulates a crash mid-write: the
// record is cut short at a deterministic byte length, the writer goes
// permanently dead (as a crashed process's disk would), and the caller
// sees an unacknowledged append. Recovery tests then assert the torn tail
// is dropped and every acknowledged commit survives.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "control/overload.hpp"
#include "core/tuple.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"

namespace sdl::persist {

/// One committed transaction as the WAL stores it. `fire` groups the
/// members of a consensus composite into one atomic record (0 = an
/// independent commit, matching HistoryEntry::consensus_fire).
///
/// `repl_mark` != 0 marks a REPLICATION WATERMARK record instead of a
/// commit: a follower appends one right after re-logging an applied
/// batch, carrying the leader sequence that batch reached. It has no
/// effect set (replay no-ops it) but consumes a local sequence number
/// like any frame, and because it is appended after the batch in the
/// same group-commit stream it is durable exactly when the data it
/// covers is — recovery restores the follower's leader-seq watermark
/// from it (RecoveredState::repl_applied_seq) so a restarted follower
/// resumes the stream where it left off instead of from zero.
struct WalCommit {
  std::uint64_t seq = 0;
  ProcessId owner = 0;
  std::uint64_t fire = 0;
  std::uint64_t repl_mark = 0;  // leader-seq watermark; 0 = normal commit
  std::vector<TupleId> retracts;
  std::vector<std::pair<TupleId, Tuple>> asserts;
};

/// Parse of one segment file. `corrupt` marks a torn or damaged tail;
/// `valid_bytes` is the length of the clean prefix (the truncation point
/// under the truncate-at-first-corrupt policy). `format_mismatch` is a
/// DISTINCT rejection: the header is intact but stamps a format version
/// this binary does not speak (e.g. a v1 segment, or one shipped from a
/// newer node) — the file must be left untouched, never truncated.
/// Commits are in file order; `offsets[i]` is the byte offset of commit
/// i's frame.
struct WalReadResult {
  bool header_ok = false;
  bool format_mismatch = false;
  std::uint32_t format_version = 0;
  std::uint32_t shard_count = 0;
  std::uint64_t start_seq = 0;
  std::uint64_t origin_node = 0;
  std::vector<WalCommit> commits;
  std::vector<std::uint64_t> offsets;
  std::uint64_t valid_bytes = 0;
  bool corrupt = false;
  std::string detail;
};

/// Current segment format version ("SDLWAL2\n" header). Version 1
/// ("SDLWAL1\n", no version/origin fields) is recognized and rejected as
/// a format mismatch, not corruption.
constexpr std::uint32_t kWalFormatVersion = 2;

/// Byte size of the v2 segment header (magic + payload + crc). Frame 0
/// starts at exactly this offset; the replication tailer seeks here.
constexpr std::size_t kWalHeaderSize = 8 + 24 + 4;

/// Reads and validates one WAL segment file. Never throws on bad input —
/// torn and corrupt files yield a clean-prefix result with `corrupt` set.
/// Throws std::runtime_error only if the file cannot be opened/read.
WalReadResult read_wal_segment(const std::string& path);

/// Segment file name for a given starting sequence ("wal-<seq>.wal").
std::string wal_segment_name(std::uint64_t start_seq);

/// Incremental frame parse over an in-memory byte window — the ONE decode
/// path shared by read_wal_segment (recovery) and the replication stream
/// (leader tailer re-validating before ship, follower apply). `data` is
/// any window whose byte 0 is a frame boundary (NOT including the segment
/// header).
enum class WalFrameStatus {
  Ok,       // one whole frame decoded; `size` bytes consumed
  End,      // clean end-of-log ([0][0] marker or all-zero padding tail)
  Torn,     // partial frame: more bytes may still arrive (live tail) or
            // the write was cut (crash) — caller context decides
  Corrupt,  // crc mismatch or undecodable payload: never recoverable
};
struct WalFrameParse {
  WalFrameStatus status = WalFrameStatus::End;
  std::size_t size = 0;  // frame bytes ([hdr 8][payload]) when status==Ok
  WalCommit commit;      // decoded record when status==Ok
  std::string detail;    // human-readable reason for Torn/Corrupt
};
WalFrameParse parse_wal_frame(std::string_view data);

class WalWriter {
 public:
  /// Opens (creating or appending to) the segment for `next_seq` in `dir`.
  /// `fsync_every`: commits per fsync batch; 1 = every commit, 0 = never.
  /// `origin_node` is stamped into every segment header this writer
  /// creates (0 = unreplicated single-node default).
  WalWriter(std::string dir, std::uint32_t shard_count, std::uint64_t next_seq,
            std::uint64_t fsync_every, std::uint64_t origin_node = 0);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one commit record. MUST be called with the commit's engine
  /// locks held (see file comment — the sequence assigned here is the
  /// recovery-order witness). Returns the assigned sequence, or 0 when
  /// the append was NOT acknowledged (writer dead, or killed mid-write by
  /// the WalAppend fault point — the record may be torn on disk).
  std::uint64_t append(ProcessId owner, std::uint64_t fire,
                       const std::vector<TupleId>& retracts,
                       const std::vector<std::pair<TupleId, Tuple>>& asserts);

  /// Appends a replication watermark record (WalCommit::repl_mark): the
  /// follower's durable "applied through leader seq `mark`" stamp. Same
  /// batching/sync discipline as append(); returns the assigned local
  /// sequence, or 0 when the writer is dead. Call it right after the
  /// batch's re-logged commits, before any other append can interleave
  /// (the follower applier is single-threaded, so this holds trivially).
  std::uint64_t append_repl_mark(std::uint64_t mark);

  /// Forces an fsync of any unsynced appends (snapshot barrier, teardown).
  void sync();

  /// Snapshot rotation: fsyncs and closes the current segment and opens a
  /// fresh one for last_appended()+1. MUST be called under total exclusion
  /// (no append concurrently). Returns the barrier — the last sequence of
  /// the closed segment; every record <= barrier lives in older segments.
  std::uint64_t rotate();

  /// False once a WalAppend kill fired (simulated crash) or an I/O error
  /// was seen: all subsequent appends are dropped and unacknowledged.
  [[nodiscard]] bool alive() const;

  [[nodiscard]] std::uint64_t last_appended() const;  // last fully written seq
  [[nodiscard]] std::uint64_t last_synced() const;    // last seq fsync covered
  [[nodiscard]] std::uint64_t appended_commits() const;
  [[nodiscard]] std::uint64_t syncs() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const std::string& segment_path() const { return path_; }

  /// Arms the WalAppend injection point (null disables).
  void set_fault_injector(FaultInjector* f) { faults_ = f; }

  /// Arms the append/flush latency instruments (null disables; also
  /// re-gated on the SDL_OBS runtime flag, once per append/flush).
  void set_metrics(obs::RuntimeMetrics* m) { metrics_ = m; }

  /// Arms the overload layer's group-commit batch cap (null disables).
  /// When the parked batch exceeds wal_max_batch_bytes, committers block
  /// on the flusher instead of growing it — bounded memory and bounded
  /// ack lag when the device cannot keep up with the commit rate.
  void set_overload(control::OverloadControl* c) { overload_ = c; }

  /// Replication hook: `fn(durable_seq)` fires every time the durable
  /// watermark advances — after the group-commit flusher's fdatasync, an
  /// inline strict sync, or (fsync_every == 0, durability off) a plain
  /// write-through. Called with the writer mutex HELD: the listener must
  /// only flip a flag / notify a condition variable and must never call
  /// back into the writer. This is how records ship once durable, never
  /// before. Set before the first append; null disables.
  void set_durable_listener(std::function<void(std::uint64_t)> fn) {
    std::scoped_lock lock(mutex_);
    durable_listener_ = std::move(fn);
  }

  /// Highest sequence the replication tailer may ship: the durable
  /// watermark (last_synced), except with durability off (fsync_every ==
  /// 0) where records are as durable as they will ever get once written —
  /// there the append watermark gates shipping instead.
  [[nodiscard]] std::uint64_t shippable_seq() const;

 private:
  void open_segment(std::uint64_t start_seq);  // caller holds mutex_
  void sync_locked(std::unique_lock<std::mutex>& lock);
  // Grows the preallocated region so the next `need` bytes at file_off_
  // are non-extending writes. Caller holds mutex_ with no flush in flight.
  void ensure_capacity_locked(std::size_t need);
  static bool write_at(int fd, const char* data, std::size_t size,
                       std::uint64_t off);
  void flusher_main();

  const std::string dir_;
  const std::uint32_t shard_count_;
  const std::uint64_t fsync_every_;
  const std::uint64_t origin_node_;
  FaultInjector* faults_ = nullptr;
  obs::RuntimeMetrics* metrics_ = nullptr;
  control::OverloadControl* overload_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable cv_;       // wakes the flusher at a batch boundary
  std::condition_variable done_cv_;  // signals a completed flush
  std::thread flusher_;              // started only when fsync_every > 1
  bool stop_ = false;
  bool flush_requested_ = false;   // a full batch awaits the flusher
  bool flush_inflight_ = false;    // the flusher is writing/fsyncing now
  int fd_ = -1;
  std::string path_;
  std::uint64_t file_off_ = 0;      // next write offset (logical data end)
  std::uint64_t prealloc_end_ = 0;  // allocated file size (>= file_off_)
  bool prealloc_enabled_ = true;    // cleared if fallocate is unsupported
  bool dead_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t last_appended_ = 0;
  std::uint64_t last_synced_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t unsynced_ = 0;  // appends since the last flush handoff
  std::string batch_;  // group-commit frames parked until the next flush
  std::string frame_scratch_;  // reused per-append encode buffer
  std::uint64_t syncs_ = 0;
  std::function<void(std::uint64_t)> durable_listener_;  // repl wakeup
};

}  // namespace sdl::persist
