#include "persist/persist.hpp"

#include <unistd.h>

#include <filesystem>
#include <stdexcept>

namespace sdl::persist {

namespace fs = std::filesystem;

PersistManager::PersistManager(PersistOptions opts, std::uint32_t shard_count)
    : opts_(std::move(opts)), shard_count_(shard_count) {
  if (!opts_.enabled()) {
    throw std::invalid_argument("PersistManager: empty dir (durability off)");
  }
  fs::create_directories(opts_.dir);
  recovered_ = replay(opts_.dir);
  if (recovered_.shard_count != 0 && recovered_.shard_count != shard_count_) {
    throw std::invalid_argument(
        "PersistManager: durable geometry shard_count " +
        std::to_string(recovered_.shard_count) + " differs from runtime's " +
        std::to_string(shard_count_));
  }
  clean_directory();
  wal_ = std::make_unique<WalWriter>(opts_.dir, shard_count_,
                                     recovered_.last_seq + 1,
                                     opts_.fsync_every, opts_.node_id);
  if (recovered_.used_snapshot) {
    last_snapshot_barrier_.store(recovered_.snapshot_barrier,
                                 std::memory_order_release);
  }
}

void PersistManager::clean_directory() {
  // Physical counterpart of replay()'s logical truncation: make the
  // directory match exactly what recovery decided to trust, so the next
  // crash recovers from a clean chain and the reopened segment never
  // appends after torn bytes.
  for (const auto& entry : fs::directory_iterator(opts_.dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const std::string path = entry.path().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      ::unlink(path.c_str());  // orphan of an interrupted snapshot write
      continue;
    }
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".wal") == 0) {
      WalReadResult seg = read_wal_segment(path);
      if (seg.format_mismatch) {
        // Another format revision's data — unreadable here but intact.
        // Leave it byte-for-byte untouched (never truncate, never delete);
        // recovery already refused to chain past it.
        continue;
      }
      if (!seg.header_ok || seg.start_seq > recovered_.last_seq + 1) {
        // Headerless stub from a crashed rotate, or a segment past a
        // corruption/gap that recovery refused to trust.
        ::unlink(path.c_str());
        continue;
      }
      // Trim torn tails AND crash-time preallocation padding: the writer
      // reopening a segment takes its file size as the data end, so every
      // byte past valid_bytes must go.
      if (seg.corrupt || entry.file_size() > seg.valid_bytes) {
        ::truncate(path.c_str(), static_cast<off_t>(seg.valid_bytes));
      }
    }
  }
}

std::uint64_t PersistManager::log_commit(
    ProcessId owner, std::uint64_t fire, const std::vector<TupleId>& retracts,
    const std::vector<std::pair<TupleId, Tuple>>& asserts) {
  const std::uint64_t seq = wal_->append(owner, fire, retracts, asserts);
  if (seq != 0 && opts_.snapshot_every > 0) {
    commits_since_snapshot_.fetch_add(1, std::memory_order_relaxed);
  }
  return seq;
}

bool PersistManager::snapshot_due() const {
  return opts_.snapshot_every > 0 &&
         !snapshots_dead_.load(std::memory_order_relaxed) &&
         commits_since_snapshot_.load(std::memory_order_relaxed) >=
             opts_.snapshot_every;
}

void PersistManager::maybe_snapshot(const Dataspace& space,
                                    const ExclusiveRunner& exclusive) {
  if (snapshot_due()) snapshot_now(space, exclusive);
}

bool PersistManager::snapshot_now(const Dataspace& space,
                                  const ExclusiveRunner& exclusive) {
  std::scoped_lock lock(snapshot_mutex_);
  if (snapshots_dead_.load(std::memory_order_relaxed)) return false;
  // Whole-protocol duration (barrier + capture + durable write + pruning),
  // recorded only for snapshots that became durable.
  obs::RuntimeMetrics* const obs_m =
      (metrics_ != nullptr && obs::enabled()) ? metrics_ : nullptr;
  const std::uint64_t t_snap0 = obs_m != nullptr ? obs::now_ns() : 0;
  // A dead WAL writer simulates a crashed disk: the in-memory state has
  // commits the log never acknowledged, and persisting it would resurrect
  // them. The durable files stay frozen at the crash point.
  if (!wal_->alive()) return false;

  // Barrier: under total exclusion, rotate the WAL and capture every
  // instance. Everything <= barrier is in the capture and in closed
  // segments; everything after goes to the fresh segment. The expensive
  // file write happens OUTSIDE the exclusion.
  std::vector<std::pair<TupleId, Tuple>> records;
  std::uint64_t barrier = 0;
  bool writer_alive = true;
  exclusive([&] {
    barrier = wal_->rotate();
    // Re-check under the barrier: a committer may have killed the WAL
    // between the alive() check above and this exclusive section (or
    // rotate()'s own sync may have died), leaving an unacknowledged
    // commit in memory that the capture would resurrect. Rotate no-ops on
    // a dead writer, so aborting here touches no durable file.
    writer_alive = wal_->alive();
    if (!writer_alive) return;
    records.reserve(space.size());
    space.for_each_instance(
        [&](const Record& r) { records.emplace_back(r.id, r.tuple); });
  });
  if (!writer_alive) return false;
  commits_since_snapshot_.store(0, std::memory_order_relaxed);

  if (!write_snapshot(opts_.dir, shard_count_, barrier, records, faults_)) {
    snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
    snapshots_dead_.store(true, std::memory_order_relaxed);
    return false;
  }
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  last_snapshot_barrier_.store(barrier, std::memory_order_release);

  // Only now that the new snapshot is durable: drop everything it
  // supersedes. A crash before this point recovers from the older
  // snapshot plus the full segment chain.
  for (const auto& entry : fs::directory_iterator(opts_.dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == snapshot_file_name(barrier)) continue;
    const bool old_snap =
        name.size() > 5 && name.compare(name.size() - 5, 5, ".snap") == 0;
    const bool old_wal =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".wal") == 0 &&
        name != wal_segment_name(barrier + 1);
    if (old_snap || old_wal) ::unlink(entry.path().string().c_str());
  }
  if (obs_m != nullptr) obs_m->snapshot_ns->record_since(t_snap0);
  return true;
}

void PersistManager::sync() { wal_->sync(); }

void PersistManager::set_fault_injector(FaultInjector* f) {
  faults_ = f;
  wal_->set_fault_injector(f);
}

void PersistManager::set_metrics(obs::RuntimeMetrics* m) {
  metrics_ = m;
  wal_->set_metrics(m);
}

void PersistManager::set_overload(control::OverloadControl* c) {
  wal_->set_overload(c);
}

void PersistManager::set_durable_listener(
    std::function<void(std::uint64_t)> fn) {
  wal_->set_durable_listener(std::move(fn));
}

PersistManager::Stats PersistManager::stats() const {
  Stats s;
  s.logged_commits = wal_->appended_commits();
  s.last_seq = wal_->last_appended();
  s.syncs = wal_->syncs();
  s.snapshots_written = snapshots_written_.load(std::memory_order_relaxed);
  s.snapshot_failures = snapshot_failures_.load(std::memory_order_relaxed);
  s.recovered_instances = recovered_.live.size();
  s.recovered_commits = recovered_.commits.size();
  return s;
}

}  // namespace sdl::persist
