#include "repl/net_transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "core/codec.hpp"

namespace sdl::repl {

namespace {

// Hard cap on one wire frame (matches the WAL's kMaxRecordLen — snapshot
// seeds can be legitimately large). The body buffer grows incrementally
// (kRecvChunk at a time) as bytes arrive, so a bogus length costs memory
// only in proportion to data the peer actually sends.
constexpr std::uint32_t kMaxNetFrame = 1u << 30;
constexpr std::size_t kRecvChunk = 1u << 20;

void put_le32(char* dst, std::uint32_t v) {
  dst[0] = static_cast<char>(v & 0xff);
  dst[1] = static_cast<char>((v >> 8) & 0xff);
  dst[2] = static_cast<char>((v >> 16) & 0xff);
  dst[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t get_le32(const char* src) {
  const auto* u = reinterpret_cast<const unsigned char*>(src);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

/// Writes all of buf or fails. MSG_NOSIGNAL: a dead peer must surface as
/// an error return, not SIGPIPE.
bool send_all(int fd, const char* buf, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buf += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

class NetTransport final : public Transport {
 public:
  explicit NetTransport(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~NetTransport() override {
    close();
    ::close(fd_);
  }

  bool send(std::string frame) override {
    if (closed_.load(std::memory_order_acquire)) return false;
    char header[8];
    put_le32(header, static_cast<std::uint32_t>(frame.size()));
    put_le32(header + 4, codec::crc32(frame.data(), frame.size()));
    if (frame.size() > kMaxNetFrame) return false;
    if (!send_all(fd_, header, sizeof(header)) ||
        !send_all(fd_, frame.data(), frame.size())) {
      close();
      return false;
    }
    return true;
  }

  RecvStatus recv(std::string* frame, int timeout_ms) override {
    char header[8];
    RecvStatus st = recv_exact(header, sizeof(header), timeout_ms, true);
    if (st != RecvStatus::Ok) return st;
    const std::uint32_t len = get_le32(header);
    const std::uint32_t want_crc = get_le32(header + 4);
    if (len > kMaxNetFrame) {
      close();
      return RecvStatus::Closed;
    }
    // Body read: the peer already committed to this frame, so wait as
    // long as it takes rather than tearing a half-read stream. Grow the
    // buffer chunk-by-chunk as bytes actually arrive — the length field
    // is peer-controlled and unvalidated until the CRC, so a hostile or
    // corrupt header must not be able to force a huge upfront allocation.
    frame->clear();
    std::size_t got = 0;
    while (got < len) {
      const std::size_t step =
          std::min<std::size_t>(len - got, kRecvChunk);
      frame->resize(got + step);
      st = recv_exact(frame->data() + got, step, -1, false);
      if (st != RecvStatus::Ok) return RecvStatus::Closed;
      got += step;
    }
    if (codec::crc32(frame->data(), len) != want_crc) {
      close();
      return RecvStatus::Closed;
    }
    return RecvStatus::Ok;
  }

  void close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  [[nodiscard]] bool alive() const override {
    return !closed_.load(std::memory_order_acquire);
  }

 private:
  /// Reads exactly `len` bytes. `can_timeout` applies the deadline only
  /// before the FIRST byte of the unit — once a frame starts arriving we
  /// finish it (a timeout mid-frame would desync the stream).
  RecvStatus recv_exact(char* buf, std::size_t len, int timeout_ms,
                        bool can_timeout) {
    std::size_t got = 0;
    while (got < len) {
      if (closed_.load(std::memory_order_acquire)) return RecvStatus::Closed;
      struct pollfd pfd = {fd_, POLLIN, 0};
      const int wait = (can_timeout && got == 0) ? timeout_ms : -1;
      const int pr = ::poll(&pfd, 1, wait);
      if (pr < 0) {
        if (errno == EINTR) continue;
        close();
        return RecvStatus::Closed;
      }
      if (pr == 0) return RecvStatus::Timeout;
      const ssize_t n = ::recv(fd_, buf + got, len - got, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        close();
        return RecvStatus::Closed;
      }
      if (n == 0) {
        close();
        return RecvStatus::Closed;
      }
      got += static_cast<std::size_t>(n);
    }
    return RecvStatus::Ok;
  }

  const int fd_;
  std::atomic<bool> closed_{false};
};

}  // namespace

NetListener::~NetListener() {
  close();
  // Safe to release the fd here: the owner joins any accepting thread
  // before destroying the listener (see close()'s contract).
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<NetListener> NetListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return nullptr;
  }
  sockaddr_in bound = {};
  socklen_t blen = sizeof(bound);
  std::uint16_t actual = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    actual = ntohs(bound.sin_port);
  }
  return std::unique_ptr<NetListener>(new NetListener(fd, actual));
}

std::unique_ptr<Transport> NetListener::accept(int timeout_ms) {
  if (fd_ < 0 || closed_.load(std::memory_order_acquire)) return nullptr;
  struct pollfd pfd = {fd_, POLLIN, 0};
  const int pr = ::poll(&pfd, 1, timeout_ms);
  if (pr <= 0 || closed_.load(std::memory_order_acquire)) return nullptr;
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return nullptr;
  return std::make_unique<NetTransport>(cfd);
}

void NetListener::close() {
  // shutdown() wakes a blocked poll()/accept() (it returns EINVAL from
  // then on); the fd stays open until the destructor so a racing accept
  // thread never polls a reclaimed descriptor number.
  if (!closed_.exchange(true, std::memory_order_acq_rel) && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

std::unique_ptr<Transport> net_connect(std::uint16_t port, int timeout_ms) {
  (void)timeout_ms;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<NetTransport>(fd);
}

}  // namespace sdl::repl
