#include "repl/transport.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

namespace sdl::repl {

namespace {

/// Shared state of one loopback pair: two FIFO queues (one per
/// direction) under one mutex. Endpoint `side` sends into queues[side]
/// and receives from queues[1 - side].
struct LoopbackCore {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::string> queues[2];
  bool closed = false;
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackCore> core, int side)
      : core_(std::move(core)), side_(side) {}

  ~LoopbackTransport() override { close(); }

  bool send(std::string frame) override {
    std::unique_lock lock(core_->mutex);
    if (core_->closed) return false;
    core_->queues[side_].push_back(std::move(frame));
    lock.unlock();
    core_->cv.notify_all();
    return true;
  }

  RecvStatus recv(std::string* frame, int timeout_ms) override {
    std::unique_lock lock(core_->mutex);
    auto& inbox = core_->queues[1 - side_];
    if (inbox.empty() && timeout_ms > 0) {
      core_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                         [&] { return core_->closed || !inbox.empty(); });
    }
    if (!inbox.empty()) {
      // Drain messages already queued even after close: the peer's last
      // acks/batches are real protocol state, not garbage.
      *frame = std::move(inbox.front());
      inbox.pop_front();
      return RecvStatus::Ok;
    }
    return core_->closed ? RecvStatus::Closed : RecvStatus::Timeout;
  }

  void close() override {
    {
      std::scoped_lock lock(core_->mutex);
      core_->closed = true;
    }
    core_->cv.notify_all();
  }

  [[nodiscard]] bool alive() const override {
    std::scoped_lock lock(core_->mutex);
    return !core_->closed;
  }

 private:
  const std::shared_ptr<LoopbackCore> core_;
  const int side_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair() {
  auto core = std::make_shared<LoopbackCore>();
  return {std::make_unique<LoopbackTransport>(core, 0),
          std::make_unique<LoopbackTransport>(core, 1)};
}

}  // namespace sdl::repl
