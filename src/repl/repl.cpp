#include "repl/repl.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "repl/net_transport.hpp"
#include "repl/wire.hpp"

namespace fs = std::filesystem;

namespace sdl::repl {

namespace {

constexpr std::size_t kReadChunk = 256 * 1024;

struct SegmentRef {
  std::uint64_t start = 0;
  std::string path;
};

bool parse_numbered(const std::string& name, const char* prefix,
                    const char* suffix, std::uint64_t* seq) {
  const std::size_t plen = std::strlen(prefix);
  const std::size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return false;
  if (name.compare(0, plen, prefix) != 0) return false;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
  const std::string digits = name.substr(plen, name.size() - plen - slen);
  std::uint64_t v = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *seq = v;
  return true;
}

std::vector<SegmentRef> list_segments(const std::string& dir) {
  std::vector<SegmentRef> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    std::uint64_t start = 0;
    if (parse_numbered(name, "wal-", ".wal", &start)) {
      out.push_back({start, entry.path().string()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentRef& a, const SegmentRef& b) {
              return a.start < b.start;
            });
  return out;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return in.good() || in.eof();
}

}  // namespace

// ---------------------------------------------------------------- leader

ReplLeader::ReplLeader(ReplOptions opts, persist::PersistManager* persist)
    : opts_(std::move(opts)), persist_(persist) {
  // Seed BEFORE registering the listener, and advance with a fetch-max:
  // a callback racing the constructor can then never be overwritten by
  // the older seed value. Wake sleeping tailers the instant the durable
  // watermark advances. The listener runs with the WAL writer mutex held:
  // store + notify only, never back into persist (see
  // WalWriter::set_durable_listener) — taking durable_mutex_ here is safe
  // (wait_shippable never touches the writer under it) and closes the
  // missed-wakeup window between a tailer's predicate check and its wait.
  durable_seq_.store(persist_->shippable_seq(), std::memory_order_release);
  persist_->set_durable_listener([this](std::uint64_t seq) {
    std::uint64_t cur = durable_seq_.load(std::memory_order_relaxed);
    while (cur < seq && !durable_seq_.compare_exchange_weak(
                            cur, seq, std::memory_order_release,
                            std::memory_order_relaxed)) {
    }
    { std::scoped_lock lock(durable_mutex_); }
    durable_cv_.notify_all();
  });
  if (opts_.listen_port != 0) {
    listener_ = NetListener::bind(opts_.listen_port);
    if (listener_ != nullptr) {
      accept_thread_ = std::thread([this] {
        while (!stop_.load(std::memory_order_acquire)) {
          auto t = listener_->accept(opts_.poll_interval_ms);
          if (t != nullptr) add_follower(std::move(t));
        }
      });
    }
  }
}

ReplLeader::~ReplLeader() {
  stop();
  // The listener captures `this`; detach it before the members die.
  persist_->set_durable_listener({});
}

void ReplLeader::add_follower(std::unique_ptr<Transport> transport) {
  std::scoped_lock lock(sessions_mutex_);
  if (stop_.load(std::memory_order_acquire)) {
    transport->close();
    return;
  }
  auto session = std::make_unique<Session>();
  session->transport = std::move(transport);
  Session* raw = session.get();
  sessions_started_.fetch_add(1, std::memory_order_relaxed);
  session->thread = std::thread([this, raw] { session_main(raw); });
  sessions_.push_back(std::move(session));
}

void ReplLeader::stop() {
  stop_.store(true, std::memory_order_release);
  {
    std::scoped_lock lock(durable_mutex_);
  }
  durable_cv_.notify_all();
  // close() only shutdown()s the listening socket (waking the blocked
  // accept); the fd itself is closed by the NetListener destructor, after
  // the accept thread is joined — no fd reuse under a live poll().
  if (listener_ != nullptr) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Session>> drained;
  {
    std::scoped_lock lock(sessions_mutex_);
    for (auto& s : sessions_) s->transport->close();
    drained.swap(sessions_);
  }
  for (auto& s : drained) {
    if (s->thread.joinable()) s->thread.join();
  }
}

bool ReplLeader::lag_exceeded() const {
  if (opts_.max_lag_bytes == 0) return false;
  std::scoped_lock lock(sessions_mutex_);
  for (const auto& s : sessions_) {
    if (s->ended.load(std::memory_order_acquire)) continue;
    const std::uint64_t sent = s->sent_bytes.load(std::memory_order_acquire);
    const std::uint64_t acked = s->acked_bytes.load(std::memory_order_acquire);
    if (sent > acked && sent - acked > opts_.max_lag_bytes) {
      const_cast<ReplLeader*>(this)->backpressure_hits_.fetch_add(
          1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

ReplLeaderStats ReplLeader::stats() const {
  ReplLeaderStats out;
  out.sessions_started = sessions_started_.load(std::memory_order_relaxed);
  out.sessions_ended = sessions_ended_.load(std::memory_order_relaxed);
  out.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  out.snapshots_sent = snapshots_sent_.load(std::memory_order_relaxed);
  out.backpressure_hits = backpressure_hits_.load(std::memory_order_relaxed);
  const std::uint64_t shippable = persist_->shippable_seq();
  std::uint64_t min_acked = shippable;
  bool any_live = false;
  std::scoped_lock lock(sessions_mutex_);
  for (const auto& s : sessions_) {
    out.bytes_sent += s->sent_bytes.load(std::memory_order_relaxed);
    if (s->ended.load(std::memory_order_acquire)) continue;
    any_live = true;
    min_acked =
        std::min(min_acked, s->acked_seq.load(std::memory_order_acquire));
    const std::uint64_t sent = s->sent_bytes.load(std::memory_order_acquire);
    const std::uint64_t acked = s->acked_bytes.load(std::memory_order_acquire);
    out.lag_bytes += sent > acked ? sent - acked : 0;
  }
  out.min_acked_seq = any_live ? min_acked : shippable;
  out.lag_records = shippable - out.min_acked_seq;
  return out;
}

bool ReplLeader::drain_acks(Session* s, int timeout_ms) {
  std::string raw;
  Message msg;
  for (;;) {
    const RecvStatus st = s->transport->recv(&raw, timeout_ms);
    if (st == RecvStatus::Closed) return false;
    if (st == RecvStatus::Timeout) return true;
    if (!decode_message(raw, &msg) || msg.kind != MsgKind::Ack) {
      s->transport->close();
      return false;
    }
    // Watermarks are monotone; a reordered ack never regresses them.
    if (msg.ack.applied_seq > s->acked_seq.load(std::memory_order_relaxed)) {
      s->acked_seq.store(msg.ack.applied_seq, std::memory_order_release);
    }
    if (msg.ack.applied_bytes >
        s->acked_bytes.load(std::memory_order_relaxed)) {
      s->acked_bytes.store(msg.ack.applied_bytes, std::memory_order_release);
    }
    timeout_ms = 0;  // drain whatever else is queued, then return
  }
}

bool ReplLeader::wait_shippable(std::uint64_t min_seq) {
  std::unique_lock lock(durable_mutex_);
  durable_cv_.wait_for(
      lock, std::chrono::milliseconds(opts_.poll_interval_ms), [&] {
        return stop_.load(std::memory_order_acquire) ||
               durable_seq_.load(std::memory_order_acquire) >= min_seq;
      });
  return !stop_.load(std::memory_order_acquire);
}

void ReplLeader::session_main(Session* s) {
  Transport* const t = s->transport.get();
  const auto finish = [&] {
    t->close();
    s->ended.store(true, std::memory_order_release);
    sessions_ended_.fetch_add(1, std::memory_order_relaxed);
  };

  // Handshake: the follower leads with Hello{node, last_applied}.
  std::uint64_t next = 0;
  {
    std::string raw;
    Message msg;
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) return finish();
      const RecvStatus st = t->recv(&raw, opts_.poll_interval_ms);
      if (st == RecvStatus::Timeout) continue;
      if (st == RecvStatus::Closed || !decode_message(raw, &msg) ||
          msg.kind != MsgKind::Hello) {
        return finish();
      }
      next = msg.hello.last_applied + 1;
      s->acked_seq.store(msg.hello.last_applied, std::memory_order_release);
      break;
    }
  }

  // Tail state: a cached fd survives pruning's unlink; `file_off` is the
  // offset of the next unshipped frame. The tail is re-read each round
  // rather than buffered across rounds — preallocated zero padding can be
  // overwritten in place by the flusher, so cached tail bytes go stale.
  int fd = -1;
  std::uint64_t cur_start = 0;
  std::uint64_t file_off = 0;
  std::string buf;
  const auto close_seg = [&] {
    if (fd >= 0) ::close(fd);
    fd = -1;
  };

  while (!stop_.load(std::memory_order_acquire)) {
    if (!drain_acks(s, 0)) break;

    // In-flight window: past the cap, block on acks instead of sending.
    // (sent/acked are both per-session; acked can still observe ahead of
    // a torn read of sent, so clamp instead of letting unsigned wrap.)
    const std::uint64_t win_sent =
        s->sent_bytes.load(std::memory_order_relaxed);
    const std::uint64_t win_acked =
        s->acked_bytes.load(std::memory_order_relaxed);
    if (win_sent > win_acked &&
        win_sent - win_acked > opts_.max_inflight_bytes) {
      if (!drain_acks(s, opts_.poll_interval_ms)) break;
      continue;
    }

    // Catch-up: the WAL below the newest snapshot barrier is pruned (or
    // about to be) — seed from the snapshot file and tail from barrier+1.
    const std::uint64_t barrier = persist_->last_snapshot_barrier();
    if (next <= barrier) {
      std::string bytes;
      const std::string path =
          persist_->options().dir + "/" + persist::snapshot_file_name(barrier);
      if (!read_file(path, &bytes)) {
        // Raced a newer snapshot's prune; rescan next round.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (FaultInjector* f = faults_.load(std::memory_order_acquire)) {
        const FaultAction a = f->decide(FaultPoint::ReplSend);
        if (a == FaultAction::Delay) f->delay();
        if (a == FaultAction::Kill) break;
      }
      SnapshotMsg msg;
      msg.file_bytes = std::move(bytes);
      const std::size_t snap_bytes = msg.file_bytes.size();
      if (!t->send(encode_snapshot(msg))) break;
      s->sent_bytes.fetch_add(snap_bytes, std::memory_order_release);
      snapshots_sent_.fetch_add(1, std::memory_order_relaxed);
      next = barrier + 1;
      close_seg();
      continue;
    }

    const std::uint64_t shippable = persist_->shippable_seq();
    if (shippable < next) {
      if (!wait_shippable(next)) break;
      continue;
    }

    // Open (or reopen after rotation/teardown) the segment covering `next`:
    // the one with the largest start <= next.
    if (fd < 0) {
      const std::vector<SegmentRef> segs =
          list_segments(persist_->options().dir);
      const SegmentRef* best = nullptr;
      for (const SegmentRef& g : segs) {
        if (g.start <= next && (best == nullptr || g.start > best->start)) {
          best = &g;
        }
      }
      if (best == nullptr) {
        // Segment pruned under us; the snapshot branch covers it next round.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      fd = ::open(best->path.c_str(), O_RDONLY);
      if (fd < 0) continue;  // pruned between list and open
      cur_start = best->start;
      file_off = persist::kWalHeaderSize;
    }

    // Read the live tail and assemble one batch of raw frames.
    buf.clear();
    while (buf.size() < opts_.max_batch_bytes + kReadChunk) {
      const std::size_t have = buf.size();
      buf.resize(have + kReadChunk);
      const ssize_t n = ::pread(fd, buf.data() + have, kReadChunk,
                                file_off + have);
      buf.resize(have + (n > 0 ? static_cast<std::size_t>(n) : 0));
      if (n <= 0 || static_cast<std::size_t>(n) < kReadChunk) break;
    }

    std::string frames;
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    std::size_t consumed = 0;
    bool clean_end = false;
    bool corrupt = false;
    while (consumed < buf.size()) {
      persist::WalFrameParse p =
          persist::parse_wal_frame(std::string_view(buf).substr(consumed));
      if (p.status == persist::WalFrameStatus::Ok) {
        if (p.commit.seq > shippable) break;  // durable gate: never ship past
        if (p.commit.seq >= next) {
          if (frames.empty()) first = p.commit.seq;
          frames.append(buf, consumed, p.size);
          last = p.commit.seq;
          next = p.commit.seq + 1;
        }
        consumed += p.size;
        if (frames.size() >= opts_.max_batch_bytes) break;
        continue;
      }
      if (p.status == persist::WalFrameStatus::Corrupt) corrupt = true;
      if (p.status == persist::WalFrameStatus::End) clean_end = true;
      break;  // Torn: a racing pwrite — re-read next round
    }
    if (buf.empty()) clean_end = true;
    file_off += consumed;

    if (!frames.empty()) {
      if (FaultInjector* f = faults_.load(std::memory_order_acquire)) {
        const FaultAction a = f->decide(FaultPoint::ReplSend);
        if (a == FaultAction::Delay) f->delay();
        if (a == FaultAction::Kill) break;  // dropped session mid-stream
      }
      BatchMsg msg;
      msg.first_seq = first;
      msg.last_seq = last;
      msg.frames = std::move(frames);
      const std::size_t frame_bytes = msg.frames.size();
      if (!t->send(encode_batch(msg))) break;
      s->sent_bytes.fetch_add(frame_bytes, std::memory_order_release);
      batches_sent_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    if (corrupt) break;  // cannot happen below the durable watermark

    if (clean_end) {
      // Durable data exists at or past `next` but this segment is done:
      // the WAL rotated. Find the successor; if none is visible yet the
      // rotation is mid-flight — retry.
      const std::vector<SegmentRef> segs =
          list_segments(persist_->options().dir);
      const SegmentRef* best = nullptr;
      for (const SegmentRef& g : segs) {
        if (g.start <= next && (best == nullptr || g.start > best->start)) {
          best = &g;
        }
      }
      if (best != nullptr && best->start != cur_start) {
        close_seg();
        continue;
      }
    }
    // Torn tail or rotation not yet visible: wait for the next durable
    // advance (or a poll tick) before re-reading.
    if (!wait_shippable(next)) break;
  }
  close_seg();
  finish();
}

// -------------------------------------------------------------- follower

ReplFollower::ReplFollower(
    ReplOptions opts, Engine* engine, persist::PersistManager* persist,
    const std::vector<std::pair<TupleId, Tuple>>& initial,
    std::uint64_t recovered_applied_seq)
    : opts_(std::move(opts)), engine_(engine), persist_(persist) {
  id_index_.reserve(initial.size());
  for (const auto& [id, tuple] : initial) {
    id_index_.emplace(id, IndexKey::of(tuple));
  }
  // Restart continuity: the Hello resumes the stream at the watermark the
  // re-logged WAL's repl_mark records prove durable. At most it
  // UNDERestimates (torn marker tail) — the redelivered suffix is
  // absorbed idempotently (Engine::apply_replicated).
  applied_seq_.store(recovered_applied_seq, std::memory_order_release);
}

ReplFollower::~ReplFollower() { detach(); }

void ReplFollower::attach(std::unique_ptr<Transport> transport) {
  std::scoped_lock lock(attach_mutex_);
  // Tear down any previous session first: the applier owns id_index_
  // between attach boundaries.
  session_stop_.store(true, std::memory_order_release);
  if (transport_ != nullptr) transport_->close();
  if (applier_.joinable()) applier_.join();
  transport_ = std::move(transport);
  session_stop_.store(false, std::memory_order_release);
  attaches_.fetch_add(1, std::memory_order_relaxed);
  Transport* const raw = transport_.get();
  applier_ = std::thread([this, raw] { applier_main(raw); });
}

std::uint64_t ReplFollower::detach() {
  std::scoped_lock lock(attach_mutex_);
  session_stop_.store(true, std::memory_order_release);
  if (transport_ != nullptr) transport_->close();
  if (applier_.joinable()) applier_.join();
  transport_.reset();
  return applied_seq_.load(std::memory_order_acquire);
}

std::uint64_t ReplFollower::promote() {
  const std::uint64_t fence = detach();
  promotions_.fetch_add(1, std::memory_order_relaxed);
  writable_.store(true, std::memory_order_release);
  return fence;
}

bool ReplFollower::attached() const {
  std::scoped_lock lock(attach_mutex_);
  return transport_ != nullptr && transport_->alive();
}

ReplFollowerStats ReplFollower::stats() const {
  ReplFollowerStats out;
  out.applied_seq = applied_seq_.load(std::memory_order_acquire);
  out.applied_commits = applied_commits_.load(std::memory_order_relaxed);
  out.applied_bytes = applied_bytes_.load(std::memory_order_relaxed);
  out.snapshots_loaded = snapshots_loaded_.load(std::memory_order_relaxed);
  out.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  out.batches_rejected = batches_rejected_.load(std::memory_order_relaxed);
  const std::uint64_t attaches = attaches_.load(std::memory_order_relaxed);
  out.reconnects = attaches > 0 ? attaches - 1 : 0;
  out.promotions = promotions_.load(std::memory_order_relaxed);
  out.missing_retracts = missing_retracts_.load(std::memory_order_relaxed);
  out.redundant_asserts = redundant_asserts_.load(std::memory_order_relaxed);
  return out;
}

void ReplFollower::applier_main(Transport* transport) {
  // Handshake: announce the contiguous watermark; the leader resumes the
  // stream there (or seeds a snapshot if it pruned past it).
  HelloMsg hello;
  hello.node_id = opts_.node_id;
  hello.last_applied = applied_seq_.load(std::memory_order_acquire);
  if (!transport->send(encode_hello(hello))) return;

  // Acked bytes are PER-SESSION: the leader windows them against its own
  // per-session sent counter, so a reconnected session restarts at zero
  // (the cumulative applied_bytes_ atomic keeps feeding the stats gauge).
  std::uint64_t session_bytes = 0;
  std::string raw;
  Message msg;
  while (!session_stop_.load(std::memory_order_acquire)) {
    const RecvStatus st = transport->recv(&raw, opts_.poll_interval_ms);
    if (st == RecvStatus::Timeout) continue;
    if (st == RecvStatus::Closed) return;
    if (!decode_message(raw, &msg)) {
      transport->close();
      return;
    }
    // ReplApply crossing: the batch is decoded but not yet applied.
    // FailCommit = reject and retry in place (redelivery without a
    // reconnect); Kill = tear the session down mid-apply.
    bool killed = false;
    if (FaultInjector* f = faults_.load(std::memory_order_acquire)) {
      for (;;) {
        const FaultAction a = f->decide(FaultPoint::ReplApply);
        if (a == FaultAction::Kill) {
          killed = true;
          break;
        }
        if (a == FaultAction::Delay) f->delay();
        if (a == FaultAction::FailCommit) {
          batches_rejected_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        break;
      }
    }
    if (killed) {
      transport->close();
      return;
    }

    bool ok = true;
    if (msg.kind == MsgKind::Snapshot) {
      ok = apply_snapshot(msg.snapshot.file_bytes);
      if (ok) {
        session_bytes += msg.snapshot.file_bytes.size();
        applied_bytes_.fetch_add(msg.snapshot.file_bytes.size(),
                                 std::memory_order_relaxed);
      }
    } else if (msg.kind == MsgKind::Batch) {
      std::uint64_t bytes = 0;
      ok = apply_batch(msg.batch.first_seq, msg.batch.last_seq,
                       msg.batch.frames, &bytes);
      if (ok) {
        session_bytes += bytes;
        applied_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      }
    } else {
      continue;  // Hello/Ack from a confused peer: ignore
    }
    if (!ok) {
      transport->close();
      return;
    }
    AckMsg ack;
    ack.applied_seq = applied_seq_.load(std::memory_order_acquire);
    ack.applied_bytes = session_bytes;
    if (!transport->send(encode_ack(ack))) return;
  }
}

bool ReplFollower::apply_snapshot(const std::string& file_bytes) {
  persist::SnapshotReadResult snap = persist::parse_snapshot(file_bytes);
  if (!snap.ok) {
    batches_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // A snapshot REPLACES the local state: one synthetic commit retracting
  // every resident instance and asserting the snapshot's records reuses
  // the exact apply path (exclusion, publish, re-log to the local WAL) —
  // the follower's own log then carries the seed and stays recoverable.
  persist::WalCommit reset;
  // The reset's seq is the leader watermark the snapshot covers — the
  // engine stamps it into the trailing repl_mark record.
  reset.seq = snap.barrier_seq;
  reset.retracts.reserve(id_index_.size());
  for (const auto& [id, key] : id_index_) reset.retracts.push_back(id);
  reset.asserts = std::move(snap.records);
  std::vector<persist::WalCommit> batch;
  batch.push_back(std::move(reset));
  const Engine::ReplApplyOutcome out =
      engine_->apply_replicated(batch, &id_index_);
  missing_retracts_.fetch_add(out.missing_retracts,
                              std::memory_order_relaxed);
  redundant_asserts_.fetch_add(out.redundant_asserts,
                               std::memory_order_relaxed);
  applied_commits_.fetch_add(out.applied_commits, std::memory_order_relaxed);
  if (!out.ok) {
    // The reset commit failed mid-apply: reject the session with the
    // watermark untouched; the reconnect handshake re-seeds from scratch.
    batches_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  applied_seq_.store(snap.barrier_seq, std::memory_order_release);
  snapshots_loaded_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ReplFollower::apply_batch(std::uint64_t first_seq,
                               std::uint64_t last_seq,
                               const std::string& frames,
                               std::uint64_t* applied_bytes) {
  const std::uint64_t applied = applied_seq_.load(std::memory_order_acquire);
  if (last_seq <= applied) return true;  // full redelivery: ack and move on
  if (first_seq > applied + 1) {
    // Gap: applying would lose commits. Tear down; the reconnect handshake
    // resumes from the watermark.
    batches_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::vector<persist::WalCommit> batch;
  std::size_t off = 0;
  std::uint64_t expect = applied + 1;
  std::uint64_t bytes = 0;
  while (off < frames.size()) {
    persist::WalFrameParse p = persist::parse_wal_frame(std::string_view(frames).substr(off));
    if (p.status == persist::WalFrameStatus::End) break;
    if (p.status != persist::WalFrameStatus::Ok) {
      batches_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    off += p.size;
    if (p.commit.seq <= applied) continue;  // partial redelivery overlap
    if (p.commit.seq != expect) {
      batches_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ++expect;
    bytes += p.size;
    batch.push_back(std::move(p.commit));
  }
  if (batch.empty()) return true;
  const Engine::ReplApplyOutcome out =
      engine_->apply_replicated(batch, &id_index_);
  missing_retracts_.fetch_add(out.missing_retracts,
                              std::memory_order_relaxed);
  redundant_asserts_.fetch_add(out.redundant_asserts,
                               std::memory_order_relaxed);
  applied_commits_.fetch_add(out.applied_commits, std::memory_order_relaxed);
  if (!out.ok) {
    // A commit threw mid-batch: everything before it applied and
    // re-logged. Advance the watermark to that prefix, reject the
    // session; the reconnect handshake resumes exactly there.
    if (out.applied_commits > 0) {
      applied_seq_.store(batch[out.applied_commits - 1].seq,
                         std::memory_order_release);
    }
    batches_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  applied_seq_.store(expect - 1, std::memory_order_release);
  *applied_bytes = bytes;
  return true;
}

}  // namespace sdl::repl
