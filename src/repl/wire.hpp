// Replication wire protocol (replication tentpole).
//
// Four message kinds move a leader's WAL to its followers:
//
//   Hello    follower → leader, once per session: who I am and the last
//            leader sequence I have contiguously applied. The leader
//            resumes the stream at last_applied + 1 — or, if that point
//            has been pruned behind a snapshot barrier, seeds the
//            follower with a Snapshot first.
//   Snapshot leader → follower: the raw bytes of an exclusive-barrier
//            snapshot FILE (persist/snapshot.hpp format, one CRC over
//            the payload) — the follower parses it with the exact
//            parse_snapshot recovery uses, restores every record with
//            its restart-stable TupleId, and continues from barrier + 1.
//   Batch    leader → follower: a contiguous run of raw WAL FRAMES
//            ([u32 len][u32 crc][payload] each, persist/wal.hpp format)
//            copied verbatim from the leader's segment files — shipped
//            only once durable (the group-commit flusher's watermark
//            gates the tailer). The follower decodes them with the same
//            parse_wal_frame recovery uses: one decode path, zero
//            re-encoding on the hot path, and every record is still
//            covered end-to-end by its own CRC.
//   Ack      follower → leader, after each applied batch/snapshot: the
//            new applied watermark plus a PER-SESSION applied-bytes
//            counter the leader windows against its per-session sent
//            bytes (a reconnected session restarts both at zero).
//
// Each message is [u8 kind][kind-specific payload] built on core/codec;
// transports add their own outer framing (length prefix + CRC for TCP).
// decode_message never throws on malformed input — it returns false and
// the session treats the peer as byzantine/dead.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sdl::repl {

enum class MsgKind : std::uint8_t {
  Hello = 1,
  Snapshot = 2,
  Batch = 3,
  Ack = 4,
};

struct HelloMsg {
  std::uint64_t node_id = 0;
  std::uint64_t last_applied = 0;  // leader sequence, 0 = fresh follower
};

struct SnapshotMsg {
  std::string file_bytes;  // verbatim snapshot file (persist::parse_snapshot)
};

struct BatchMsg {
  std::uint64_t first_seq = 0;  // sequence of the first frame
  std::uint64_t last_seq = 0;   // sequence of the last frame
  std::string frames;           // concatenated raw WAL frames
};

struct AckMsg {
  std::uint64_t applied_seq = 0;    // follower's contiguous watermark
  std::uint64_t applied_bytes = 0;  // per-session bytes applied
};

std::string encode_hello(const HelloMsg& m);
std::string encode_snapshot(const SnapshotMsg& m);
std::string encode_batch(const BatchMsg& m);
std::string encode_ack(const AckMsg& m);

/// One decoded message; `kind` selects which member is meaningful.
struct Message {
  MsgKind kind = MsgKind::Hello;
  HelloMsg hello;
  SnapshotMsg snapshot;
  BatchMsg batch;
  AckMsg ack;
};

/// Returns false on any malformed frame (unknown kind, truncation,
/// trailing bytes). Never throws.
bool decode_message(std::string_view frame, Message* out);

}  // namespace sdl::repl
