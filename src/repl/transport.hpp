// Replication transport abstraction (replication tentpole).
//
// The leader/follower protocol (repl.hpp) is transport-agnostic: sessions
// exchange opaque, already-framed wire messages (wire.hpp) over anything
// that can move byte strings in order. Two implementations ship:
//
//   * LoopbackTransport (here) — a pair of in-process endpoints joined by
//     two bounded-by-protocol queues. Tests and the deterministic chaos
//     sweeps use it: no sockets, no ports, no kernel buffering — the only
//     nondeterminism left is thread scheduling, which the seed-driven
//     FaultInjector (ReplSend/ReplApply) perturbs on purpose.
//   * NetTransport (net_transport.hpp) — length-prefixed, CRC-framed TCP
//     on a real socket, for actual multi-process topologies.
//
// Contract: send() and recv() are each called from ONE thread at a time
// (the session thread owns its transport), but send and recv may race
// each other and close() may race both — endpoints are internally
// synchronized. Message boundaries are preserved: one send() is one
// recv(). Ordering is FIFO per direction. A closed endpoint fails sends
// immediately and drains nothing further.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace sdl::repl {

enum class RecvStatus : std::uint8_t {
  Ok = 0,   // one message delivered
  Timeout,  // nothing arrived within the deadline; transport still alive
  Closed,   // peer gone (or close() called); nothing further will arrive
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues one wire message. Returns false when the transport is closed
  /// (the message is dropped — the session must treat this as peer death).
  virtual bool send(std::string frame) = 0;

  /// Waits up to `timeout_ms` for the next message (0 = poll). Delivered
  /// messages arrive whole and in send order.
  virtual RecvStatus recv(std::string* frame, int timeout_ms) = 0;

  /// Idempotent; wakes any blocked recv() on both endpoints.
  virtual void close() = 0;

  [[nodiscard]] virtual bool alive() const = 0;
};

/// Creates two joined in-process endpoints: what one sends the other
/// receives. Destroying either endpoint closes the pair.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair();

}  // namespace sdl::repl
