// Leader/follower replication (tentpole of this PR).
//
// ROADMAP item 3 ("go distributed") starts here: the WAL is already a
// total serialization witness of every effectful commit (wal.hpp), so
// replication is log shipping — no second consensus protocol, no
// per-transaction coordination:
//
//   * The LEADER tails its own live WAL segment files and streams raw
//     frames to each follower session. The group-commit flusher's durable
//     listener wakes the tailer the moment the watermark advances, and
//     the tailer never ships past shippable_seq() — a record reaches a
//     follower once durable on the leader, never before, so a follower
//     can never apply a commit the leader could lose in a crash.
//   * Each FOLLOWER applies batches onto its own Runtime under total
//     exclusion (Engine::apply_replicated), preserving restart-stable
//     TupleIds, and re-logs every commit to its own WAL — a follower is
//     an independently recoverable replica, not a cache. A repl_mark
//     watermark record trails every re-logged batch in the same stream,
//     so the leader-seq watermark is durable exactly with the data and a
//     RESTARTED follower resumes the stream from where its recovery left
//     off (RecoveredState::repl_applied_seq) instead of from zero; the
//     apply path is redelivery-idempotent besides, so an underestimated
//     watermark (torn marker) costs a resend, never a crash or
//     divergence. Local parked readers wake on the applied keys, and the
//     lock-free optimistic read path (ISSUE 6) serves eventually-
//     consistent reads with the applied-seq watermark exposed for
//     staleness checks.
//   * A follower joining BEHIND the retained WAL window (the leader
//     pruned segments past a snapshot barrier) is seeded with the raw
//     snapshot file first, then tailed from barrier + 1 — the same
//     exclusive-barrier snapshot + rotation machinery recovery uses.
//   * On leader death a follower is PROMOTED: the applier fences at the
//     last contiguously applied record (contiguity is enforced on every
//     batch, so the fence needs no scan), the local WAL rotates to a
//     fresh segment, and the runtime resumes writable. The chaos sweep
//     (tests/repl) kills leaders mid-stream across 64 seeds and proves
//     the promoted follower's state equals the serial replay of its own
//     log through the ISSUE 3 checker.
//
// Ordering/durability invariants (docs/IMPLEMENTATION.md §17 derives
// them): ship-once-durable, apply-in-sequence-order (batches whose first
// frame is not applied+1 are rejected), ack-after-apply. Backpressure:
// when a session's unacked bytes exceed max_lag_bytes the leader reports
// lag_exceeded() and the Runtime sheds new writes (control layer) instead
// of letting followers fall unboundedly behind.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "persist/persist.hpp"
#include "repl/transport.hpp"
#include "txn/engine.hpp"

namespace sdl::repl {

class NetListener;

enum class Role : std::uint8_t {
  None = 0,  // replication off (the default; zero cost)
  Leader,    // tail own WAL, stream to attached followers
  Follower,  // apply a leader's stream; read-only until promoted
};

/// Replication configuration (RuntimeOptions::repl).
struct ReplOptions {
  Role role = Role::None;
  /// This node's id; stamped into PersistOptions::node_id and the Hello.
  std::uint64_t node_id = 0;
  /// Leader: TCP accept port for followers (0 = loopback attach only).
  std::uint16_t listen_port = 0;
  /// Follower: leader's TCP port to connect to (0 = loopback attach only).
  std::uint16_t connect_port = 0;
  /// Largest Batch payload the tailer assembles before shipping.
  std::size_t max_batch_bytes = 256 * 1024;
  /// Per-session unacked-byte window; the tailer stalls past it.
  std::size_t max_inflight_bytes = 4 * 1024 * 1024;
  /// Leader backpressure: when any session's unacked bytes exceed this,
  /// lag_exceeded() turns true and the Runtime sheds writes (0 = off).
  std::uint64_t max_lag_bytes = 0;
  /// Session poll/wait granularity (stop checks, ack drains).
  int poll_interval_ms = 20;

  [[nodiscard]] bool enabled() const { return role != Role::None; }
};

struct ReplLeaderStats {
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_ended = 0;
  std::uint64_t batches_sent = 0;
  std::uint64_t bytes_sent = 0;       // batch frame bytes shipped
  std::uint64_t snapshots_sent = 0;   // catch-up seeds shipped
  std::uint64_t min_acked_seq = 0;    // slowest live follower's watermark
  std::uint64_t lag_records = 0;      // shippable_seq - min_acked_seq
  std::uint64_t lag_bytes = 0;        // unacked bytes across live sessions
  std::uint64_t backpressure_hits = 0;  // lag_exceeded() observed true
};

/// Owns one session thread per attached follower. Each session is fed by
/// the PersistManager's durable listener (registered here) and tails the
/// segment FILES — a cached fd survives pruning's unlink, and rotation is
/// detected by rescanning the directory for the segment covering the
/// cursor. Sessions are independent: a slow follower stalls only itself.
class ReplLeader {
 public:
  /// `persist` must outlive the leader and be enabled (the WAL is the
  /// replication stream — a leader without durability has nothing to ship).
  ReplLeader(ReplOptions opts, persist::PersistManager* persist);
  ~ReplLeader();
  ReplLeader(const ReplLeader&) = delete;
  ReplLeader& operator=(const ReplLeader&) = delete;

  /// Attaches one follower endpoint and starts its session thread.
  void add_follower(std::unique_ptr<Transport> transport);

  /// Closes every session and joins the threads. Idempotent; also run by
  /// the destructor. Simulates leader death in tests when called while
  /// followers are mid-stream.
  void stop();

  /// True while any live session's unacked bytes exceed max_lag_bytes
  /// (0 = never). The Runtime's write path sheds on this.
  [[nodiscard]] bool lag_exceeded() const;

  [[nodiscard]] ReplLeaderStats stats() const;

  /// Arms the ReplSend injection point (null disarms).
  void set_fault_injector(FaultInjector* f) {
    faults_.store(f, std::memory_order_release);
  }

 private:
  struct Session {
    std::unique_ptr<Transport> transport;
    std::thread thread;
    std::atomic<std::uint64_t> acked_seq{0};
    std::atomic<std::uint64_t> sent_bytes{0};
    std::atomic<std::uint64_t> acked_bytes{0};
    std::atomic<bool> ended{false};
  };

  void session_main(Session* s);
  bool drain_acks(Session* s, int timeout_ms);
  /// Sleeps until the durable watermark reaches `min_seq`, stop, or one
  /// poll interval. Returns false when stopping.
  bool wait_shippable(std::uint64_t min_seq);

  const ReplOptions opts_;
  persist::PersistManager* const persist_;
  std::atomic<FaultInjector*> faults_{nullptr};

  // Durable-watermark wakeup. The WAL listener only stores + notifies
  // (it runs with the writer mutex held — see set_durable_listener).
  std::mutex durable_mutex_;
  std::condition_variable durable_cv_;
  std::atomic<std::uint64_t> durable_seq_{0};

  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::atomic<bool> stop_{false};

  // TCP accept loop (listen_port != 0 only).
  std::unique_ptr<NetListener> listener_;
  std::thread accept_thread_;

  std::atomic<std::uint64_t> batches_sent_{0};
  std::atomic<std::uint64_t> snapshots_sent_{0};
  std::atomic<std::uint64_t> sessions_started_{0};
  std::atomic<std::uint64_t> sessions_ended_{0};
  std::atomic<std::uint64_t> backpressure_hits_{0};
};

struct ReplFollowerStats {
  std::uint64_t applied_seq = 0;      // contiguous leader-seq watermark
  std::uint64_t applied_commits = 0;
  std::uint64_t applied_bytes = 0;    // cumulative batch bytes applied
  std::uint64_t snapshots_loaded = 0;
  std::uint64_t batches_applied = 0;
  std::uint64_t batches_rejected = 0;  // contiguity / decode rejections
  std::uint64_t reconnects = 0;        // attach() calls past the first
  std::uint64_t promotions = 0;
  std::uint64_t missing_retracts = 0;  // divergence signal (should be 0)
  std::uint64_t redundant_asserts = 0;  // idempotent redelivery skips
};

/// Applies a leader's stream onto a local engine. One applier thread per
/// attach(); reattaching after a session death (leader killed, transport
/// torn) resumes from the applied watermark via the Hello handshake.
class ReplFollower {
 public:
  /// `engine` applies batches; `persist` (may be null) re-logs them so
  /// the follower is independently recoverable. `initial` seeds the
  /// id -> IndexKey shadow map with the records already resident (the
  /// follower's own recovery), since WAL retracts carry only ids.
  /// `recovered_applied_seq` seeds the leader-seq watermark with what
  /// recovery restored from the re-logged WAL's repl_mark records
  /// (RecoveredState::repl_applied_seq) — the Hello handshake then
  /// resumes the stream there instead of redelivering from zero.
  ReplFollower(ReplOptions opts, Engine* engine,
               persist::PersistManager* persist,
               const std::vector<std::pair<TupleId, Tuple>>& initial,
               std::uint64_t recovered_applied_seq = 0);
  ~ReplFollower();
  ReplFollower(const ReplFollower&) = delete;
  ReplFollower& operator=(const ReplFollower&) = delete;

  /// Connects this follower to a leader endpoint: detaches any previous
  /// session, then starts the applier thread (handshake + apply loop).
  void attach(std::unique_ptr<Transport> transport);

  /// Stops the applier and joins it. Returns the promotion fence: the
  /// last contiguously applied leader sequence. Idempotent.
  std::uint64_t detach();

  /// Promotion on leader death: detaches (fencing at the last contiguous
  /// applied record) and marks this node writable. The caller (Runtime)
  /// rotates the local WAL via snapshot_now so the leader epoch starts on
  /// a fresh segment. Returns the fence sequence.
  std::uint64_t promote();

  /// True once promote() ran — the Runtime's write gate.
  [[nodiscard]] bool writable() const {
    return writable_.load(std::memory_order_acquire);
  }

  /// Eventually-consistent staleness watermark for local reads.
  [[nodiscard]] std::uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_acquire);
  }

  /// True while an applier session is live (transport not torn down).
  [[nodiscard]] bool attached() const;

  [[nodiscard]] ReplFollowerStats stats() const;

  /// Arms the ReplApply injection point (null disarms).
  void set_fault_injector(FaultInjector* f) {
    faults_.store(f, std::memory_order_release);
  }

 private:
  void applier_main(Transport* transport);
  bool apply_snapshot(const std::string& file_bytes);
  /// Returns false on a rejection that must tear the session down.
  bool apply_batch(std::uint64_t first_seq, std::uint64_t last_seq,
                   const std::string& frames, std::uint64_t* applied_bytes);

  const ReplOptions opts_;
  Engine* const engine_;
  persist::PersistManager* const persist_;
  std::atomic<FaultInjector*> faults_{nullptr};

  mutable std::mutex attach_mutex_;  // serializes attach/detach/promote
  std::unique_ptr<Transport> transport_;
  std::thread applier_;
  std::atomic<bool> session_stop_{false};

  // id -> IndexKey shadow of the local dataspace; owned by the applier
  // (single-threaded between attach boundaries, mutated under exclusive).
  std::unordered_map<TupleId, IndexKey> id_index_;

  std::atomic<std::uint64_t> applied_seq_{0};
  std::atomic<std::uint64_t> applied_commits_{0};
  std::atomic<std::uint64_t> applied_bytes_{0};
  std::atomic<std::uint64_t> snapshots_loaded_{0};
  std::atomic<std::uint64_t> batches_applied_{0};
  std::atomic<std::uint64_t> batches_rejected_{0};
  std::atomic<std::uint64_t> attaches_{0};
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> missing_retracts_{0};
  std::atomic<std::uint64_t> redundant_asserts_{0};
  std::atomic<bool> writable_{false};
};

}  // namespace sdl::repl
