// TCP transport for replication (replication tentpole).
//
// Real multi-process topologies run the leader/follower protocol over
// plain TCP. Outer framing per wire message:
//
//   [u32 len][u32 crc32(payload)][payload]   (little-endian, like the WAL)
//
// The CRC catches corruption the kernel won't (bad NICs, middleboxes);
// a mismatched frame closes the connection — the protocol recovers by
// reconnecting and re-handshaking from the follower's watermark, so
// tearing down a suspect stream is always safe.
//
// Threading matches the Transport contract: one thread sends, one thread
// receives, close() may race both. The socket fd is shutdown() on close
// to wake a blocked recv; recv timeouts use poll().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "repl/transport.hpp"

namespace sdl::repl {

/// Listening socket bound to 127.0.0.1:`port` (port 0 = kernel-assigned;
/// `port()` reports the actual one). accept() blocks up to `timeout_ms`
/// and returns one connected Transport per peer, or nullptr on timeout /
/// after close().
class NetListener {
 public:
  ~NetListener();

  /// Returns nullptr when the bind/listen fails (port busy).
  static std::unique_ptr<NetListener> bind(std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const { return port_; }

  std::unique_ptr<Transport> accept(int timeout_ms);

  /// Idempotent; wakes a blocked accept(). Only shutdown(2)s the socket —
  /// close() may race a concurrent accept()/poll() on another thread, and
  /// ::close(2)ing there would both race the fd read and let a concurrent
  /// open() reclaim the fd number under the live poll. The fd itself is
  /// released by the destructor, which the owner runs only after joining
  /// the accept thread.
  void close();

 private:
  NetListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  const int fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

/// Connects to 127.0.0.1:`port`. Returns nullptr when the peer refuses.
std::unique_ptr<Transport> net_connect(std::uint16_t port, int timeout_ms);

}  // namespace sdl::repl
