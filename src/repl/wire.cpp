#include "repl/wire.hpp"

#include "core/codec.hpp"

namespace sdl::repl {

std::string encode_hello(const HelloMsg& m) {
  std::string out;
  codec::put_u8(out, static_cast<std::uint8_t>(MsgKind::Hello));
  codec::put_varint(out, m.node_id);
  codec::put_varint(out, m.last_applied);
  return out;
}

std::string encode_snapshot(const SnapshotMsg& m) {
  std::string out;
  codec::put_u8(out, static_cast<std::uint8_t>(MsgKind::Snapshot));
  codec::put_string(out, m.file_bytes);
  return out;
}

std::string encode_batch(const BatchMsg& m) {
  std::string out;
  codec::put_u8(out, static_cast<std::uint8_t>(MsgKind::Batch));
  codec::put_varint(out, m.first_seq);
  codec::put_varint(out, m.last_seq);
  codec::put_string(out, m.frames);
  return out;
}

std::string encode_ack(const AckMsg& m) {
  std::string out;
  codec::put_u8(out, static_cast<std::uint8_t>(MsgKind::Ack));
  codec::put_varint(out, m.applied_seq);
  codec::put_varint(out, m.applied_bytes);
  return out;
}

bool decode_message(std::string_view frame, Message* out) {
  codec::Reader r(frame);
  const std::uint8_t kind = r.get_u8();
  if (!r.ok()) return false;
  switch (static_cast<MsgKind>(kind)) {
    case MsgKind::Hello:
      out->kind = MsgKind::Hello;
      out->hello.node_id = r.get_varint();
      out->hello.last_applied = r.get_varint();
      break;
    case MsgKind::Snapshot:
      out->kind = MsgKind::Snapshot;
      out->snapshot.file_bytes = r.get_string();
      break;
    case MsgKind::Batch:
      out->kind = MsgKind::Batch;
      out->batch.first_seq = r.get_varint();
      out->batch.last_seq = r.get_varint();
      out->batch.frames = r.get_string();
      break;
    case MsgKind::Ack:
      out->kind = MsgKind::Ack;
      out->ack.applied_seq = r.get_varint();
      out->ack.applied_bytes = r.get_varint();
      break;
    default:
      return false;
  }
  return r.ok() && r.at_end();
}

}  // namespace sdl::repl
