#include "trace/timeline.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_map>

namespace sdl {
namespace {

/// Rendering priority when several events share a column: show the most
/// informative one.
int glyph_priority(TraceKind k) {
  switch (k) {
    case TraceKind::Terminate: return 6;
    case TraceKind::Consensus: return 5;
    case TraceKind::Spawn: return 4;
    case TraceKind::Commit: return 3;
    case TraceKind::Park: return 2;
    case TraceKind::Wake: return 1;
    case TraceKind::SeedTuple: return 0;
  }
  return 0;
}

char glyph(TraceKind k) {
  switch (k) {
    case TraceKind::Spawn: return 'S';
    case TraceKind::Commit: return 'C';
    case TraceKind::Park: return 'P';
    case TraceKind::Wake: return 'w';
    case TraceKind::Consensus: return '@';
    case TraceKind::Terminate: return 'T';
    case TraceKind::SeedTuple: return '+';
  }
  return '?';
}

}  // namespace

TimelineSummary summarize(const std::vector<TraceEvent>& events) {
  TimelineSummary summary;
  if (events.empty()) return summary;
  summary.first_sequence = events.front().sequence;
  summary.last_sequence = events.back().sequence;
  summary.total_events = events.size();

  std::unordered_map<ProcessId, std::size_t> index;
  auto row_for = [&](const TraceEvent& ev) -> ProcessTimeline& {
    auto it = index.find(ev.pid);
    if (it == index.end()) {
      it = index.emplace(ev.pid, summary.processes.size()).first;
      ProcessTimeline tl;
      tl.pid = ev.pid;
      tl.name = ev.detail.empty() ? ("pid" + std::to_string(ev.pid)) : ev.detail;
      tl.spawned_at = ev.sequence;
      summary.processes.push_back(std::move(tl));
    }
    return summary.processes[it->second];
  };

  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceKind::SeedTuple) {
      ++summary.seeds;
      continue;
    }
    if (ev.kind == TraceKind::Consensus) ++summary.consensus_fires;
    ProcessTimeline& row = row_for(ev);
    row.events.emplace_back(ev.sequence, ev.kind);
    switch (ev.kind) {
      case TraceKind::Spawn:
        row.spawned_at = ev.sequence;
        if (!ev.detail.empty()) row.name = ev.detail;
        break;
      case TraceKind::Commit: ++row.commits; break;
      case TraceKind::Park: ++row.parks; break;
      case TraceKind::Wake: ++row.wakes; break;
      case TraceKind::Terminate:
        row.terminated = true;
        row.terminated_at = ev.sequence;
        break;
      case TraceKind::Consensus:
      case TraceKind::SeedTuple:
        break;
    }
  }
  return summary;
}

void render_ascii(const TimelineSummary& summary, std::ostream& os, int width) {
  if (width < 8) width = 8;
  const std::uint64_t span =
      summary.last_sequence >= summary.first_sequence
          ? summary.last_sequence - summary.first_sequence + 1
          : 1;
  auto column = [&](std::uint64_t seq) -> int {
    const std::uint64_t offset = seq - summary.first_sequence;
    return static_cast<int>(offset * static_cast<std::uint64_t>(width) / span);
  };

  std::size_t label_width = 8;
  for (const ProcessTimeline& row : summary.processes) {
    label_width = std::max(label_width,
                           row.name.size() + 1 + std::to_string(row.pid).size() + 1);
  }

  os << "timeline: " << summary.processes.size() << " processes, "
     << summary.total_events << " events";
  if (summary.consensus_fires > 0) {
    os << ", " << summary.consensus_fires << " consensus fires";
  }
  os << "\n";

  for (const ProcessTimeline& row : summary.processes) {
    std::string lane(static_cast<std::size_t>(width), ' ');
    const int from = column(row.spawned_at);
    const int to =
        row.terminated ? column(row.terminated_at) : width - 1;
    for (int c = from; c <= to && c < width; ++c) {
      lane[static_cast<std::size_t>(c)] = '-';
    }
    std::vector<int> priority(static_cast<std::size_t>(width), -1);
    for (const auto& [seq, kind] : row.events) {
      const int c = column(seq);
      if (c < 0 || c >= width) continue;
      const int p = glyph_priority(kind);
      if (p > priority[static_cast<std::size_t>(c)]) {
        priority[static_cast<std::size_t>(c)] = p;
        lane[static_cast<std::size_t>(c)] = glyph(kind);
      }
    }
    std::string label = row.name + "#" + std::to_string(row.pid);
    label.resize(label_width, ' ');
    os << label << "|" << lane << "|  commits=" << row.commits
       << " parks=" << row.parks;
    if (!row.terminated) os << " (live)";
    os << "\n";
  }
}

namespace {

void html_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '<': os << "&lt;"; break;
      case '>': os << "&gt;"; break;
      case '&': os << "&amp;"; break;
      case '"': os << "&quot;"; break;
      default: os << c;
    }
  }
}

const char* event_color(TraceKind k) {
  switch (k) {
    case TraceKind::Spawn: return "#2b8a3e";      // green
    case TraceKind::Commit: return "#1971c2";     // blue
    case TraceKind::Park: return "#e8590c";       // orange
    case TraceKind::Wake: return "#f59f00";       // amber
    case TraceKind::Consensus: return "#9c36b5";  // purple
    case TraceKind::Terminate: return "#495057";  // gray
    case TraceKind::SeedTuple: return "#868e96";
  }
  return "#000";
}

}  // namespace

void render_html(const TimelineSummary& summary, std::ostream& os) {
  constexpr int kLaneHeight = 22;
  constexpr int kLabelWidth = 180;
  constexpr int kPlotWidth = 900;
  constexpr int kHeader = 56;
  const int height =
      kHeader + kLaneHeight * static_cast<int>(summary.processes.size()) + 24;
  const std::uint64_t span =
      summary.last_sequence >= summary.first_sequence
          ? summary.last_sequence - summary.first_sequence + 1
          : 1;
  auto x_of = [&](std::uint64_t seq) -> double {
    return kLabelWidth +
           static_cast<double>(seq - summary.first_sequence) /
               static_cast<double>(span) * kPlotWidth;
  };

  os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
     << "<title>SDL run timeline</title><style>\n"
     << "body{font:13px/1.4 system-ui,sans-serif;margin:16px;}\n"
     << "text{font:11px monospace;}\n"
     << ".legend span{margin-right:14px;}\n"
     << ".dot{display:inline-block;width:9px;height:9px;border-radius:2px;"
     << "margin-right:4px;vertical-align:-1px;}\n"
     << "</style></head><body>\n";
  os << "<h3>SDL run timeline</h3>\n<p>" << summary.processes.size()
     << " processes, " << summary.total_events << " events";
  if (summary.consensus_fires > 0) {
    os << ", " << summary.consensus_fires << " consensus fires";
  }
  if (summary.seeds > 0) os << ", " << summary.seeds << " seeded tuples";
  os << "</p>\n<p class=\"legend\">";
  const std::pair<TraceKind, const char*> legend[] = {
      {TraceKind::Spawn, "spawn"},   {TraceKind::Commit, "commit"},
      {TraceKind::Park, "park"},     {TraceKind::Wake, "wake"},
      {TraceKind::Consensus, "consensus"}, {TraceKind::Terminate, "terminate"},
  };
  for (const auto& [kind, name] : legend) {
    os << "<span><span class=\"dot\" style=\"background:" << event_color(kind)
       << "\"></span>" << name << "</span>";
  }
  os << "</p>\n";

  os << "<svg width=\"" << kLabelWidth + kPlotWidth + 20 << "\" height=\""
     << height << "\">\n";
  int lane = 0;
  for (const ProcessTimeline& row : summary.processes) {
    const int y = kHeader + lane * kLaneHeight;
    const int mid = y + kLaneHeight / 2;
    os << "<text x=\"4\" y=\"" << mid + 4 << "\">";
    html_escape(os, row.name + "#" + std::to_string(row.pid));
    os << "</text>\n";
    // Lifespan bar.
    const double x0 = x_of(row.spawned_at);
    const double x1 = row.terminated ? x_of(row.terminated_at)
                                     : kLabelWidth + kPlotWidth;
    os << "<rect x=\"" << x0 << "\" y=\"" << mid - 2 << "\" width=\""
       << std::max(1.0, x1 - x0) << "\" height=\"4\" fill=\"#dee2e6\"/>\n";
    // Event ticks with hover titles.
    for (const auto& [seq, kind] : row.events) {
      os << "<rect x=\"" << x_of(seq) - 1.5 << "\" y=\"" << mid - 6
         << "\" width=\"3\" height=\"12\" fill=\"" << event_color(kind)
         << "\"><title>#" << seq << " " << to_string(kind) << " "
         << "</title></rect>\n";
    }
    ++lane;
  }
  os << "</svg>\n</body></html>\n";
}

}  // namespace sdl
