// Timeline visualization (S10, §4): "there is no other way for humans to
// assimilate voluminous information about the continuously changing
// program state" — the paper motivates SDL partly by programmer-defined
// visualization. This module turns a trace into per-process timelines and
// renders them as an ASCII chart (one row per process, event-time on the
// x-axis), the text-mode stand-in for the graphical environment the paper
// envisions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace sdl {

/// Aggregated per-process view of a trace.
struct ProcessTimeline {
  ProcessId pid = 0;
  std::string name;
  std::uint64_t spawned_at = 0;      // event sequence of the Spawn event
  bool terminated = false;
  std::uint64_t terminated_at = 0;   // valid when terminated
  std::uint64_t commits = 0;
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;
  /// (sequence, kind) of every event attributed to this process, in order.
  std::vector<std::pair<std::uint64_t, TraceKind>> events;
};

struct TimelineSummary {
  std::vector<ProcessTimeline> processes;  // in spawn (first-seen) order
  std::uint64_t first_sequence = 0;
  std::uint64_t last_sequence = 0;
  std::uint64_t total_events = 0;
  std::uint64_t consensus_fires = 0;
  std::uint64_t seeds = 0;
};

/// Builds a summary from trace events (as returned by
/// TraceRecorder::events(): oldest first). Processes first seen through a
/// non-Spawn event (e.g. the ring overwrote their spawn) are included
/// with spawned_at = their first event.
TimelineSummary summarize(const std::vector<TraceEvent>& events);

/// Renders one row per process:
///
///   Sort#3       |--C-C--P.w-C---T |  commits=3 parks=1
///
/// '-' alive, 'C' commit, 'P' park, 'w' wake, '@' consensus, 'T'
/// terminate; the x-axis is event-sequence time compressed to `width`
/// columns (the densest event in a column wins).
void render_ascii(const TimelineSummary& summary, std::ostream& os,
                  int width = 64);

/// Renders a self-contained HTML page with an SVG timeline: one lane per
/// process (lifespan bar + event ticks, hover titles with event details),
/// plus the run's headline counters. This is the paper's §4 "programmer-
/// defined visualization" in its minimal, dependency-free form — open the
/// file in any browser.
void render_html(const TimelineSummary& summary, std::ostream& os);

}  // namespace sdl
