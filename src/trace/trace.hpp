// Execution tracing (S10). The paper motivates SDL partly by program
// visualization and debugging: tuple identifiers exist so that "the owner
// may be determined" during "debugging and testing" (§2), and §4 calls for
// environments that let humans "assimilate voluminous information about
// the continuously changing program state".
//
// TraceRecorder is a bounded, thread-safe event log the runtime writes
// into when tracing is enabled. Dumpers render it as text or JSON — the
// JSON form is the feed a visualization front-end would consume.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "core/tuple.hpp"

namespace sdl {

enum class TraceKind {
  Spawn,        // process created
  Commit,       // transaction committed
  Park,         // process blocked
  Wake,         // process unblocked
  Consensus,    // a consensus set fired
  Terminate,    // process finished
  SeedTuple,    // environment asserted a tuple
};

const char* to_string(TraceKind k);

struct TraceEvent {
  std::uint64_t sequence = 0;  // global order of recording
  TraceKind kind = TraceKind::Commit;
  ProcessId pid = 0;
  std::string detail;          // e.g. the transaction or tuple rendered
};

/// Bounded ring of trace events. When full, the oldest events are
/// overwritten — tracing must never make a long run unbounded in memory.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 65536);

  void record(TraceKind kind, ProcessId pid, std::string detail);

  /// True once record() may be skipped entirely (cheap fast-path check).
  /// Atomic: the flag is flipped by the host thread while workers are
  /// already running record()'s unlocked fast path.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }

  /// Events in recording order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::uint64_t total_recorded() const;

  void clear();

  /// One line per event: "#42 commit pid=3 <detail>".
  void dump_text(std::ostream& os) const;
  /// JSON array of {seq, kind, pid, detail} objects.
  void dump_json(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;  // guards ring_ and next_
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t next_ = 0;
  std::atomic<bool> enabled_{true};
};

}  // namespace sdl
