#include "trace/trace.hpp"

#include <ostream>

namespace sdl {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::Spawn: return "spawn";
    case TraceKind::Commit: return "commit";
    case TraceKind::Park: return "park";
    case TraceKind::Wake: return "wake";
    case TraceKind::Consensus: return "consensus";
    case TraceKind::Terminate: return "terminate";
    case TraceKind::SeedTuple: return "seed";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceRecorder::record(TraceKind kind, ProcessId pid, std::string detail) {
  if (!enabled()) return;
  std::scoped_lock lock(mutex_);
  TraceEvent ev{next_, kind, pid, std::move(detail)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[static_cast<std::size_t>(next_ % capacity_)] = std::move(ev);
  }
  ++next_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::scoped_lock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    const std::size_t start = static_cast<std::size_t>(next_ % capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t TraceRecorder::total_recorded() const {
  std::scoped_lock lock(mutex_);
  return next_;
}

void TraceRecorder::clear() {
  std::scoped_lock lock(mutex_);
  ring_.clear();
  next_ = 0;
}

void TraceRecorder::dump_text(std::ostream& os) const {
  for (const TraceEvent& ev : events()) {
    os << "#" << ev.sequence << " " << to_string(ev.kind) << " pid=" << ev.pid
       << " " << ev.detail << "\n";
  }
}

namespace {
void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}
}  // namespace

void TraceRecorder::dump_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const TraceEvent& ev : events()) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"seq\": " << ev.sequence << ", \"kind\": \"" << to_string(ev.kind)
       << "\", \"pid\": " << ev.pid << ", \"detail\": \"";
    json_escape(os, ev.detail);
    os << "\"}";
  }
  os << "\n]\n";
}

}  // namespace sdl
