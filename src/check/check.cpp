#include "check/check.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace sdl {

const char* to_string(HistoryViolation::Kind k) {
  switch (k) {
    case HistoryViolation::Kind::LostUpdate: return "lost-update";
    case HistoryViolation::Kind::DirtyRead: return "dirty-read";
    case HistoryViolation::Kind::DoubleRetract: return "double-retract";
    case HistoryViolation::Kind::DuplicateAssert: return "duplicate-assert";
    case HistoryViolation::Kind::ConsensusAtomicity:
      return "consensus-atomicity";
    case HistoryViolation::Kind::FinalStateDivergence:
      return "final-state-divergence";
  }
  return "?";
}

std::string CheckReport::to_string() const {
  std::string out = std::to_string(commits_checked) + " commits checked, " +
                    std::to_string(violations.size()) + " violations";
  for (const HistoryViolation& v : violations) {
    out += "\n  [" + std::string(sdl::to_string(v.kind)) + "] seq " +
           std::to_string(v.seq) + ": " + v.detail;
  }
  return out;
}

namespace {

std::string entry_tag(const HistoryEntry& e) {
  std::string t = "pid " + std::to_string(e.owner);
  if (!e.label.empty()) t += " (" + e.label + ")";
  return t;
}

}  // namespace

CheckReport check_history(const std::vector<TupleId>& initial,
                          std::vector<HistoryEntry> entries,
                          const std::vector<TupleId>& final_ids) {
  CheckReport report;
  report.commits_checked = entries.size();
  std::sort(entries.begin(), entries.end(),
            [](const HistoryEntry& a, const HistoryEntry& b) {
              return a.seq < b.seq;
            });

  // Pre-passes: where each id is asserted (classifies a failed read as
  // dirty vs unknown) and how many entries each consensus fire has (the
  // contiguity check needs the total).
  std::unordered_map<TupleId, std::uint64_t> assert_seq;
  std::unordered_map<std::uint64_t, std::size_t> fire_sizes;
  for (const HistoryEntry& e : entries) {
    for (TupleId id : e.asserts) {
      // First assert wins; a duplicate is reported during replay.
      assert_seq.emplace(id, e.seq);
    }
    if (e.consensus_fire != 0) ++fire_sizes[e.consensus_fire];
  }

  std::unordered_set<TupleId> model(initial.begin(), initial.end());
  std::unordered_map<TupleId, std::uint64_t> retracted_at;
  std::unordered_set<TupleId> ever_existed(initial.begin(), initial.end());

  auto flag = [&](HistoryViolation::Kind kind, std::uint64_t seq,
                  std::string detail) {
    report.violations.push_back({kind, seq, std::move(detail)});
  };

  auto check_read = [&](const HistoryEntry& e, TupleId id) {
    if (model.count(id) != 0) return;
    auto rit = retracted_at.find(id);
    if (rit != retracted_at.end()) {
      flag(HistoryViolation::Kind::LostUpdate, e.seq,
           entry_tag(e) + " read instance " + id.to_string() +
               " already retracted at seq " + std::to_string(rit->second));
      return;
    }
    auto ait = assert_seq.find(id);
    if (ait != assert_seq.end() && ait->second > e.seq) {
      flag(HistoryViolation::Kind::DirtyRead, e.seq,
           entry_tag(e) + " read instance " + id.to_string() +
               " before its creating commit at seq " +
               std::to_string(ait->second));
    } else {
      flag(HistoryViolation::Kind::DirtyRead, e.seq,
           entry_tag(e) + " read instance " + id.to_string() +
               " that no serial execution produces");
    }
  };

  // Replay. Entries sharing a nonzero consensus_fire form one atomic
  // composite: reads against the common pre-state, then retractions
  // (deduped across members), then additions.
  std::size_t i = 0;
  while (i < entries.size()) {
    std::size_t j = i + 1;
    const std::uint64_t fire = entries[i].consensus_fire;
    if (fire != 0) {
      while (j < entries.size() && entries[j].consensus_fire == fire) ++j;
      if (j - i != fire_sizes[fire]) {
        flag(HistoryViolation::Kind::ConsensusAtomicity, entries[i].seq,
             "consensus fire " + std::to_string(fire) +
                 " interleaved with other commits (" + std::to_string(j - i) +
                 " of " + std::to_string(fire_sizes[fire]) +
                 " members contiguous)");
        fire_sizes[fire] -= (j - i);  // count the rest once, not twice
      }
    }

    for (std::size_t k = i; k < j; ++k) {
      for (TupleId id : entries[k].reads) check_read(entries[k], id);
    }
    std::unordered_set<TupleId> group_retracted;
    for (std::size_t k = i; k < j; ++k) {
      const HistoryEntry& e = entries[k];
      for (TupleId id : e.retracts) {
        if (!group_retracted.insert(id).second) continue;  // composite dedupe
        if (model.erase(id) != 0) {
          retracted_at[id] = e.seq;
          continue;
        }
        auto rit = retracted_at.find(id);
        if (rit != retracted_at.end()) {
          flag(HistoryViolation::Kind::DoubleRetract, e.seq,
               entry_tag(e) + " retracted instance " + id.to_string() +
                   " already retracted at seq " + std::to_string(rit->second));
        } else {
          flag(HistoryViolation::Kind::DoubleRetract, e.seq,
               entry_tag(e) + " retracted instance " + id.to_string() +
                   " that no serial execution produces");
        }
      }
    }
    for (std::size_t k = i; k < j; ++k) {
      const HistoryEntry& e = entries[k];
      for (TupleId id : e.asserts) {
        if (!ever_existed.insert(id).second) {
          flag(HistoryViolation::Kind::DuplicateAssert, e.seq,
               entry_tag(e) + " asserted instance " + id.to_string() +
                   " whose id already existed");
          continue;
        }
        model.insert(id);
      }
    }
    i = j;
  }

  // Final state: the model after the serial replay must be exactly the
  // real dataspace. A divergence means a commit was torn (reported
  // success, effects missing) or an unrecorded mutation happened.
  std::unordered_set<TupleId> real(final_ids.begin(), final_ids.end());
  std::vector<TupleId> missing, extra;
  for (TupleId id : model) {
    if (real.count(id) == 0) missing.push_back(id);
  }
  for (TupleId id : real) {
    if (model.count(id) == 0) extra.push_back(id);
  }
  if (!missing.empty() || !extra.empty()) {
    std::sort(missing.begin(), missing.end());
    std::sort(extra.begin(), extra.end());
    std::string detail = "model vs dataspace: " +
                         std::to_string(missing.size()) +
                         " instances missing from the dataspace, " +
                         std::to_string(extra.size()) + " unexplained";
    auto sample = [&](const char* tag, const std::vector<TupleId>& ids) {
      if (ids.empty()) return;
      detail += std::string("; ") + tag + ":";
      for (std::size_t s = 0; s < std::min<std::size_t>(ids.size(), 4); ++s) {
        detail += " " + ids[s].to_string();
      }
    };
    sample("missing", missing);
    sample("unexplained", extra);
    flag(HistoryViolation::Kind::FinalStateDivergence, 0, std::move(detail));
  }
  return report;
}

CheckReport check_serializability(const HistoryRecorder& history,
                                  const Dataspace& space) {
  std::vector<TupleId> final_ids;
  for (const Record& r : space.snapshot()) final_ids.push_back(r.id);
  return check_history(history.initial(), history.entries(), final_ids);
}

}  // namespace sdl
