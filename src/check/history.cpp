#include "check/history.hpp"

#include <algorithm>

namespace sdl {

void HistoryRecorder::reset(const Dataspace& space) {
  std::scoped_lock lock(mutex_);
  entries_.clear();
  initial_.clear();
  for (const Record& r : space.snapshot()) initial_.push_back(r.id);
  next_seq_.store(1, std::memory_order_relaxed);
}

void HistoryRecorder::record_seed(TupleId id) {
  std::scoped_lock lock(mutex_);
  initial_.push_back(id);
}

void HistoryRecorder::record_commit(ProcessId owner,
                                    std::uint64_t consensus_fire,
                                    std::vector<TupleId> reads,
                                    std::vector<TupleId> retracts,
                                    std::vector<TupleId> asserts,
                                    std::string label) {
  HistoryEntry e;
  e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  e.owner = owner;
  e.consensus_fire = consensus_fire;
  e.reads = std::move(reads);
  e.retracts = std::move(retracts);
  e.asserts = std::move(asserts);
  e.label = std::move(label);
  std::scoped_lock lock(mutex_);
  entries_.push_back(std::move(e));
}

std::vector<HistoryEntry> HistoryRecorder::entries() const {
  std::vector<HistoryEntry> out;
  {
    std::scoped_lock lock(mutex_);
    out = entries_;
  }
  // Append order can differ from sequence order when read-only commits
  // under shared locks race each other; the witness is the seq order.
  std::sort(out.begin(), out.end(),
            [](const HistoryEntry& a, const HistoryEntry& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<TupleId> HistoryRecorder::initial() const {
  std::scoped_lock lock(mutex_);
  return initial_;
}

}  // namespace sdl
