// Commit-history recording for the serializability checker (ISSUE 3).
//
// The paper's central guarantee is that every transaction — including an
// n-way consensus — "appears as a single atomic transformation" of the
// dataspace. The engines record, for each commit, the tuple *instances*
// the query bound (reads), the instances erased (retracts) and the
// instances created (asserts), stamped with a global sequence number
// assigned WHILE THE COMMIT'S LOCKS ARE HELD. Under correct strict 2PL
// any two conflicting commits hold a common lock, so the sequence order
// is a valid serialization witness; the checker (check.hpp) replays it
// against a single-threaded reference model and flags any step the
// witness cannot explain.
//
// Deliberately independent of the transaction types: the recorder speaks
// only TupleId/IndexKey, so the engine layer can depend on it without a
// cycle (sdl_txn links sdl_check).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "space/dataspace.hpp"

namespace sdl {

/// One committed transaction as the checker sees it. Entries created by
/// the same consensus fire share a nonzero `consensus_fire` ordinal and
/// are replayed as one atomic composite (they must also be contiguous in
/// sequence order — the engine commits them under total exclusion).
struct HistoryEntry {
  std::uint64_t seq = 0;             // serialization witness position
  ProcessId owner = 0;
  std::uint64_t consensus_fire = 0;  // 0 = independent transaction
  std::vector<TupleId> reads;        // instances the query bound
  std::vector<TupleId> retracts;     // instances the commit erased
  std::vector<TupleId> asserts;      // instances the commit created
  std::string label;                 // diagnostics (rendered transaction)
};

/// Thread-safe commit log. Enable, reset against the quiescent dataspace,
/// run, then hand to check_serializability. The sequence counter is
/// atomic so concurrent read-only commits (which hold only shared locks)
/// order themselves; their relative order is free precisely because they
/// do not conflict.
class HistoryRecorder {
 public:
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Forgets everything recorded and snapshots `space` as the initial
  /// state. Call while quiescent (no transactions in flight).
  void reset(const Dataspace& space);

  /// An environment seed (Runtime::seed) — extends the initial state.
  void record_seed(TupleId id);

  /// Records one commit. MUST be called with the commit's engine locks
  /// still held: the sequence number assigned here is the serialization
  /// witness the checker validates. Id vectors may contain duplicates
  /// (ForAll matches); the checker dedupes.
  void record_commit(ProcessId owner, std::uint64_t consensus_fire,
                     std::vector<TupleId> reads, std::vector<TupleId> retracts,
                     std::vector<TupleId> asserts, std::string label);

  /// Entries sorted by sequence number.
  [[nodiscard]] std::vector<HistoryEntry> entries() const;
  /// Initial-state instance ids (snapshot + seeds).
  [[nodiscard]] std::vector<TupleId> initial() const;
  [[nodiscard]] std::uint64_t commits() const {
    return next_seq_.load(std::memory_order_relaxed) - 1;
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_seq_{1};
  mutable std::mutex mutex_;  // guards entries_ and initial_
  std::vector<HistoryEntry> entries_;
  std::vector<TupleId> initial_;
};

}  // namespace sdl
