// The serializability checker (ISSUE 3 tentpole, part 2).
//
// Replays a recorded commit history, in sequence order, against a
// single-threaded reference model of the dataspace (a set of live
// instance ids seeded from the initial snapshot) and verifies that every
// observation is explained by that serial execution:
//
//   * a commit reads an instance the serial order says was already
//     retracted            → lost update
//   * a commit reads an instance a LATER commit creates (or one that
//     never existed)       → dirty read / broken witness order
//   * a commit retracts an instance already gone → double retract
//   * a commit creates an id that already exists → duplicate assert
//   * entries of one consensus fire are not contiguous in the witness
//     order                → broken consensus atomicity
//   * the model's final state differs from the real dataspace
//                          → final-state divergence (a torn or lost commit)
//
// Entries sharing a nonzero consensus_fire are replayed as ONE atomic
// composite: all reads against the common pre-state, then all
// retractions (deduped, §2.2's composite rule), then all additions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/history.hpp"

namespace sdl {

struct HistoryViolation {
  enum class Kind {
    LostUpdate,
    DirtyRead,
    DoubleRetract,
    DuplicateAssert,
    ConsensusAtomicity,
    FinalStateDivergence,
  };
  Kind kind = Kind::LostUpdate;
  std::uint64_t seq = 0;  // witness position (0 for final-state checks)
  std::string detail;
};

const char* to_string(HistoryViolation::Kind k);

struct CheckReport {
  std::vector<HistoryViolation> violations;
  std::size_t commits_checked = 0;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// One line per violation, prefixed with the commit count.
  [[nodiscard]] std::string to_string() const;
};

/// Pure replay — unit-testable without a runtime. `entries` may be in any
/// order (replayed by seq); `final_ids` is the real dataspace's live ids
/// after the run.
CheckReport check_history(const std::vector<TupleId>& initial,
                          std::vector<HistoryEntry> entries,
                          const std::vector<TupleId>& final_ids);

/// Convenience over a recorder and the live dataspace. Call while
/// quiescent (after run()); snapshots `space` for the final-state check.
CheckReport check_serializability(const HistoryRecorder& history,
                                  const Dataspace& space);

}  // namespace sdl
