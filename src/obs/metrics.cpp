#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "core/epoch.hpp"

namespace sdl::obs {

namespace {

std::atomic<bool>& enabled_flag() {
  // Read SDL_OBS exactly once, on first use; set_enabled() overrides.
  static std::atomic<bool> flag{[] {
    const char* v = std::getenv("SDL_OBS");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
  }()};
  return flag;
}

// Upper bound (inclusive) of histogram bucket i: bucket 0 holds exactly
// zero, bucket i>=1 holds bit_width(ns)==i, i.e. ns <= 2^i - 1.
std::uint64_t bucket_upper(std::size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~0ull;
  return (1ull << i) - 1;
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace {

std::atomic<std::uint32_t>& span_period_flag() {
  // Read SDL_OBS_SAMPLE exactly once, on first use; the setter overrides.
  static std::atomic<std::uint32_t> flag{[]() -> std::uint32_t {
    const char* v = std::getenv("SDL_OBS_SAMPLE");
    if (v == nullptr || v[0] == '\0') return 64;
    const long n = std::strtol(v, nullptr, 10);
    return n >= 1 ? static_cast<std::uint32_t>(n) : 1;
  }()};
  return flag;
}

}  // namespace

std::uint32_t span_sample_period() {
  return span_period_flag().load(std::memory_order_relaxed);
}
void set_span_sample_period(std::uint32_t period) {
  span_period_flag().store(period >= 1 ? period : 1,
                           std::memory_order_relaxed);
}

bool sample_span() {
  const std::uint32_t period = span_sample_period();
  if (period <= 1) return true;
  // Countdown starts at 1 so the first transaction on every thread is
  // always sampled — short-lived workers still contribute spans.
  thread_local std::uint32_t countdown = 1;
  if (--countdown == 0) {
    countdown = period;
    return true;
  }
  return false;
}

double LatencyHistogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets[i];
    if (cum >= target) {
      // The true sample is somewhere in this bucket; report its upper
      // bound, clamped by the observed max so p99 never exceeds it.
      return std::min(static_cast<double>(bucket_upper(i)),
                      static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::gauge(const std::string& name, GaugeFn fn) {
  std::scoped_lock lock(mutex_);
  gauges_[name] = std::move(fn);
}

std::string MetricsRegistry::to_prometheus() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c->load() << "\n";
  }
  for (const auto& [name, fn] : gauges_) {
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << fn() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    os << "# TYPE " << name << " histogram\n";
    // Cumulative le-buckets up to the highest populated one, then +Inf.
    std::size_t top = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      if (s.buckets[i] != 0) top = i;
    }
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= top; ++i) {
      cum += s.buckets[i];
      os << name << "_bucket{le=\"" << bucket_upper(i) << "\"} " << cum
         << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << s.count << "\n";
    os << name << "_sum " << s.sum << "\n";
    os << name << "_count " << s.count << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream os;
  os << "{";
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c->load();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, fn] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << fn();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{"
       << "\"count\":" << s.count << ",\"sum\":" << s.sum
       << ",\"max\":" << s.max << ",\"mean\":" << format_double(s.mean())
       << ",\"p50\":" << format_double(s.quantile(0.50))
       << ",\"p90\":" << format_double(s.quantile(0.90))
       << ",\"p99\":" << format_double(s.quantile(0.99)) << "}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::summary() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::uint64_t v = c->load();
    if (v != 0) os << name << " = " << v << "\n";
  }
  for (const auto& [name, fn] : gauges_) {
    const std::uint64_t v = fn();
    if (v != 0) os << name << " = " << v << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    if (s.count == 0) continue;
    os << name << ": count=" << s.count
       << " mean=" << format_double(s.mean() / 1e3)
       << "us p50=" << format_double(s.quantile(0.50) / 1e3)
       << "us p90=" << format_double(s.quantile(0.90) / 1e3)
       << "us p99=" << format_double(s.quantile(0.99) / 1e3)
       << "us max=" << format_double(static_cast<double>(s.max) / 1e3)
       << "us\n";
  }
  return os.str();
}

RuntimeMetrics::RuntimeMetrics(MetricsRegistry& reg) : registry(&reg) {
  txn_lock_wait_ns = &reg.histogram("sdl_txn_lock_wait_ns");
  txn_evaluate_ns = &reg.histogram("sdl_txn_evaluate_ns");
  txn_apply_ns = &reg.histogram("sdl_txn_apply_ns");
  txn_publish_ns = &reg.histogram("sdl_txn_publish_ns");
  txn_total_ns = &reg.histogram("sdl_txn_total_ns");
  txn_lock_hold_ns = &reg.histogram("sdl_txn_lock_hold_ns");
  lock_shared_acquired = &reg.counter("sdl_lock_shared_acquired_total");
  lock_exclusive_acquired = &reg.counter("sdl_lock_exclusive_acquired_total");
  lock_shared_contended = &reg.counter("sdl_lock_shared_contended_total");
  lock_exclusive_contended =
      &reg.counter("sdl_lock_exclusive_contended_total");
  read_optimistic_ok = &reg.counter("sdl_read_optimistic_ok_total");
  read_validation_retry = &reg.counter("sdl_read_validation_retry_total");
  read_lock_fallback = &reg.counter("sdl_read_lock_fallback_total");
  // Retired-but-not-yet-freed EBR objects: a growing value means grace
  // periods are not expiring (a thread is parked inside an epoch::Guard —
  // by design Guards never span a block, so sustained growth is a bug).
  reg.gauge("sdl_epoch_backlog", [] { return epoch::backlog(); });
  park_delayed_txn_ns = &reg.histogram("sdl_park_delayed_txn_ns");
  park_selection_ns = &reg.histogram("sdl_park_selection_ns");
  park_consensus_ns = &reg.histogram("sdl_park_consensus_ns");
  park_replication_ns = &reg.histogram("sdl_park_replication_ns");
  wake_to_dispatch_ns = &reg.histogram("sdl_wake_to_dispatch_ns");
  consensus_claim_fire_ns = &reg.histogram("sdl_consensus_claim_fire_ns");
  wal_append_ns = &reg.histogram("sdl_wal_append_ns");
  wal_flush_ns = &reg.histogram("sdl_wal_flush_ns");
  snapshot_ns = &reg.histogram("sdl_snapshot_ns");
  window_records_scanned = &reg.counter("sdl_window_records_scanned_total");
  window_records_admitted = &reg.counter("sdl_window_records_admitted_total");
  inc_delta_applied = &reg.counter("sdl_inc_delta_applied_total");
  inc_fallback_nonmonotone = &reg.counter("sdl_inc_fallback_nonmonotone_total");
  inc_fallback_view = &reg.counter("sdl_inc_fallback_view_total");
  inc_fallback_no_delta = &reg.counter("sdl_inc_fallback_no_delta_total");
  inc_fallback_batch = &reg.counter("sdl_inc_fallback_batch_total");
  inc_fallback_capacity = &reg.counter("sdl_inc_fallback_capacity_total");
}

}  // namespace sdl::obs
