#include "obs/report.hpp"

namespace sdl::obs {

PeriodicReporter::PeriodicReporter(const MetricsRegistry& registry,
                                   std::chrono::milliseconds interval,
                                   Sink sink, Format format)
    : registry_(registry),
      interval_(interval),
      sink_(std::move(sink)),
      format_(format),
      thread_([this] { loop(); }) {}

PeriodicReporter::~PeriodicReporter() { stop(); }

void PeriodicReporter::stop() {
  {
    std::scoped_lock lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  sink_(render());  // final flush so short runs still report once
}

void PeriodicReporter::loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) break;
    lock.unlock();
    sink_(render());
    lock.lock();
  }
}

std::string PeriodicReporter::render() const {
  switch (format_) {
    case Format::Prometheus:
      return registry_.to_prometheus();
    case Format::Json:
      return registry_.to_json();
    case Format::Summary:
    default:
      return registry_.summary();
  }
}

}  // namespace sdl::obs
