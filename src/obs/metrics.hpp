// Observability subsystem (tentpole of this PR): a unified registry of
// lock-free instruments over the runtime's hot paths.
//
// The paper's central scalability claim is that views bound the *scope and
// hence the cost* of transactions (§2.1). Until now that cost was
// invisible: counters lived in disconnected pockets (EngineStats,
// Runtime::Stats, persist::Stats, SpaceStats) with no latency data, no
// lock-contention signal and no export path. This module provides:
//
//   * Counter           — StripedCounter-backed event counter (relaxed
//                         atomics, per-thread stripes; statistics only).
//   * LatencyHistogram  — 64 fixed log2-scale buckets (bucket i holds
//                         samples with bit_width(ns) == i). No per-sample
//                         allocation, three relaxed atomic RMWs per
//                         record; p50/p90/p99/max derive from the bucket
//                         counts at read time.
//   * MetricsRegistry   — name → instrument map with Prometheus-style
//                         text, JSON and human-summary exporters, plus
//                         gauges (callbacks) that pull the pre-existing
//                         stat pockets into the same export.
//   * RuntimeMetrics    — the named instrument set the runtime wires into
//                         the engine / scheduler / consensus / persist /
//                         view hot paths (see instrument catalog,
//                         IMPLEMENTATION.md §13).
//
// Cost model: instruments are armed through a raw pointer that components
// null-gate ONCE per operation against the SDL_OBS runtime flag (one
// relaxed atomic load); when disabled the per-txn cost is that single
// branch. When enabled, the per-transaction engine spans (~6 steady_clock
// reads + ~6 histogram records ≈ 350ns) would dominate a sub-microsecond
// commit, so those spans are SAMPLED: each worker thread records them on
// 1-in-N transactions (SDL_OBS_SAMPLE, default 64), which keeps measured
// enabled overhead ≤ 5% on the E15/E5 shapes (EXPERIMENTS.md E19).
// Event counters outside the per-txn path (window scan tallies, park/wake,
// consensus, WAL) and all gauges remain exact.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/striped_counter.hpp"

namespace sdl::obs {

/// Global runtime switch. Initialized once from the SDL_OBS environment
/// variable (unset, empty or "0" = disabled); tests and benches flip it
/// with set_enabled(). Components read it once per operation and then
/// carry a nullable instruments pointer, so the disabled path costs one
/// relaxed load + branch.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Span-sampling period for the per-transaction engine instruments: each
/// worker thread records the evaluate/lock/apply/publish spans (and the
/// matching lock acquire/contended counts) on 1-in-N of its transactions.
/// Initialized once from SDL_OBS_SAMPLE (default 64, minimum 1 = record
/// every transaction); tests and benches override with
/// set_span_sample_period(). The log2 histograms are shape-stable under
/// uniform thinning, so sampled quantiles track the true ones; sampled
/// *counts* underestimate totals by ~the period (documented in §13).
[[nodiscard]] std::uint32_t span_sample_period();
void set_span_sample_period(std::uint32_t period);

/// Per-thread sampling decision: true on the first call on each thread,
/// then once every span_sample_period() calls. Deterministic per thread
/// (a countdown, not a PRNG) — cheap and free of modulo bias; periodic
/// aliasing against workload phase is acceptable for latency statistics.
[[nodiscard]] bool sample_span();

/// steady_clock now, as integer nanoseconds (histogram sample unit).
[[nodiscard]] inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic event counter; striped to keep hot-path increments off a
/// shared cache line. Statistics only — load() is not linearizable.
class Counter {
 public:
  void add(std::uint64_t n = 1) { cells_.add(n); }
  [[nodiscard]] std::uint64_t load() const { return cells_.load(); }

 private:
  StripedCounter cells_;
};

/// Fixed-bucket log2-scale latency histogram. record(ns) lands the sample
/// in bucket bit_width(ns) (bucket 0 = exactly 0ns, bucket i>=1 spans
/// [2^(i-1), 2^i - 1]); all updates are relaxed atomics and no memory is
/// allocated per sample. Quantiles are derived from the bucket counts and
/// are upper bounds with at most 2x resolution error — plenty to tell a
/// 2µs lock wait from a 2ms one.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t ns) {
    const std::size_t b = static_cast<std::size_t>(std::bit_width(ns));
    buckets_[b < kBuckets ? b : kBuckets - 1].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (ns > cur &&
           !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }
  /// Convenience: record the elapsed time since a now_ns() timestamp.
  void record_since(std::uint64_t start_ns) {
    const std::uint64_t now = now_ns();
    record(now > start_ns ? now - start_ns : 0);
  }

  /// Point-in-time read of the bucket counts (relaxed; per-bucket counts
  /// are exact once writers quiesce, approximate while they run).
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Upper-bound estimate of the q-quantile in ns (q in (0, 1]).
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Name → instrument registry with exporters. Instrument creation takes a
/// mutex (do it at wiring time, not on hot paths); returned references
/// are stable for the registry's lifetime. Gauges are pull callbacks —
/// they bridge the pre-existing stat pockets (EngineStats, SpaceStats,
/// persist::Stats, scheduler counters) into the same export without
/// double-counting on any hot path.
class MetricsRegistry {
 public:
  using GaugeFn = std::function<std::uint64_t()>;

  /// Returns the named instrument, creating it on first use.
  Counter& counter(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);
  /// Registers (or replaces) a pull gauge.
  void gauge(const std::string& name, GaugeFn fn);

  /// Prometheus text exposition: counters/gauges as single samples,
  /// histograms as cumulative le-buckets (power-of-two upper bounds) plus
  /// _sum/_count. Deterministic order (name-sorted) for golden tests.
  [[nodiscard]] std::string to_prometheus() const;
  /// One JSON object: {"counters":{},"gauges":{},"histograms":{}} with
  /// derived p50/p90/p99/max per histogram. Deterministic order.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable digest (RunReport's metrics section): nonzero
  /// counters/gauges and histograms with count/mean/p50/p90/p99/max.
  [[nodiscard]] std::string summary() const;

 private:
  mutable std::mutex mutex_;  // guards map shape only, not instrument data
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::string, GaugeFn> gauges_;
};

/// The runtime's named instrument set — raw pointers into a registry so
/// hot paths index instruments without a map lookup or string hash.
/// Components receive this via set_metrics(RuntimeMetrics*) (null =
/// detached, mirroring the fault-injector wiring) and re-gate on
/// obs::enabled() once per operation.
struct RuntimeMetrics {
  explicit RuntimeMetrics(MetricsRegistry& registry);

  MetricsRegistry* registry = nullptr;

  // Engine: txn lifecycle spans (evaluate → lock → apply → publish) and
  // shard-lock acquire wait / hold / contention.
  LatencyHistogram* txn_lock_wait_ns = nullptr;
  LatencyHistogram* txn_evaluate_ns = nullptr;
  LatencyHistogram* txn_apply_ns = nullptr;
  LatencyHistogram* txn_publish_ns = nullptr;
  LatencyHistogram* txn_total_ns = nullptr;
  LatencyHistogram* txn_lock_hold_ns = nullptr;
  Counter* lock_shared_acquired = nullptr;
  Counter* lock_exclusive_acquired = nullptr;
  Counter* lock_shared_contended = nullptr;
  Counter* lock_exclusive_contended = nullptr;

  // Engine: lock-free optimistic read path (ISSUE 6). Counted EXACTLY
  // (not span-sampled): optimistic reads never touch the lock counters
  // above, so these are the only record of the read path's behavior and
  // the ratio retry/(ok+retry) is the conflict rate the bench gates on.
  // ok = attempts whose version validation passed; retry = attempts that
  // failed validation and were retried in place; fallback = transactions
  // that exhausted their optimistic attempts and went to shared locks.
  Counter* read_optimistic_ok = nullptr;
  Counter* read_validation_retry = nullptr;
  Counter* read_lock_fallback = nullptr;

  // Scheduler: park duration per ParkReason, and the latency from a wake
  // (Parked → Ready) to the next dispatch (begin_running).
  LatencyHistogram* park_delayed_txn_ns = nullptr;
  LatencyHistogram* park_selection_ns = nullptr;
  LatencyHistogram* park_consensus_ns = nullptr;
  LatencyHistogram* park_replication_ns = nullptr;
  LatencyHistogram* wake_to_dispatch_ns = nullptr;

  // Consensus: claim (state → Claimed) through composite commit and
  // member resume, per fired component.
  LatencyHistogram* consensus_claim_fire_ns = nullptr;

  // Durability: committer-side WAL append, flush-batch write+fdatasync
  // (group commit and inline), and the whole snapshot barrier protocol.
  LatencyHistogram* wal_append_ns = nullptr;
  LatencyHistogram* wal_flush_ns = nullptr;
  LatencyHistogram* snapshot_ns = nullptr;

  // View windows: records a window scan visited vs records the window
  // admitted — the direct measurement of the §2.1 cost-bounding claim.
  Counter* window_records_scanned = nullptr;
  Counter* window_records_admitted = nullptr;

  // Incremental wakeup evaluation (ISSUE 8): delta entries consumed by
  // seeded checks, and full-re-evaluation fallbacks by reason. Flat names
  // (one counter per reason, not a label) keep the JSON exporter valid —
  // these mirror the exact always-on IncrementalControl counters.
  Counter* inc_delta_applied = nullptr;
  Counter* inc_fallback_nonmonotone = nullptr;
  Counter* inc_fallback_view = nullptr;
  Counter* inc_fallback_no_delta = nullptr;
  Counter* inc_fallback_batch = nullptr;
  Counter* inc_fallback_capacity = nullptr;
};

}  // namespace sdl::obs
