// Optional periodic reporter: a background thread that renders the
// registry at a fixed interval and hands the text to a caller-supplied
// sink (stderr, a file, a test probe). Entirely outside the hot paths —
// exports read instruments with relaxed loads.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace sdl::obs {

class PeriodicReporter {
 public:
  enum class Format { Summary, Prometheus, Json };
  using Sink = std::function<void(const std::string&)>;

  /// Starts reporting immediately; first report fires after one interval.
  PeriodicReporter(const MetricsRegistry& registry,
                   std::chrono::milliseconds interval, Sink sink,
                   Format format = Format::Summary);
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Stops the thread after flushing one final report.
  void stop();

 private:
  void loop();
  [[nodiscard]] std::string render() const;

  const MetricsRegistry& registry_;
  const std::chrono::milliseconds interval_;
  const Sink sink_;
  const Format format_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace sdl::obs
