// Consensus transactions (§2.2, "Consensus Transactions").
//
// "A consensus set is defined as a set of processes closed under the
//  transitive closure of the relation
//      p needs q ≡ (Import(p) ∩ Import(q) ∩ D ≠ ∅).
//  A consensus transaction is executed whenever all processes in the
//  consensus set are ready to execute consensus transactions.
//  Determination that consensus has been reached is very similar to the
//  quiescence detection problem. The composite effect on the dataspace is
//  computed by first performing the retractions associated with each of
//  the participating transactions and then the corresponding additions."
//
// Implementation: on every relevant event (a process parks with consensus
// offers, any park, a termination) the manager sweeps the society under
// total exclusion, computes the needs-graph's connected components with
// union-find, and fires every component all of whose members are parked
// at consensus offers with satisfiable queries.
//
// Import sets: for parked processes (stable environments) the overlap is
// exact — tuple-level, per the paper. For runnable processes (whose
// environments cannot be read safely) a frozen bucket-level summary
// over-approximates the import set; an over-approximation can only delay
// a fire, never produce a wrong one.
#pragma once

#include <atomic>
#include <cstdint>

#include "process/scheduler.hpp"

namespace sdl {

class ConsensusManager {
 public:
  ConsensusManager(Engine& engine, Scheduler& scheduler)
      : engine_(engine), scheduler_(scheduler) {}

  ConsensusManager(const ConsensusManager&) = delete;
  ConsensusManager& operator=(const ConsensusManager&) = delete;

  /// Something consensus-relevant happened; sweep until no component
  /// fires. Reentrant and thread-safe: concurrent callers collapse into
  /// one sweeping thread.
  void notify();

  /// Arms the ConsensusClaim / ConsensusCommit injection points (null
  /// disables). FailCommit at either point aborts the fire attempt via
  /// the claim-revert path — every member returns to Parked with its
  /// offers intact and the sweep retries, so an injected abort can delay
  /// a consensus but never wedge or corrupt it. (Arming FailCommit at
  /// permille 1000 with unlimited fires is a livelock by construction —
  /// chaos tests bound the fire budget instead.)
  void set_fault_injector(FaultInjector* f) { faults_ = f; }

  /// Arms the claim-to-fire latency instrument (null disables; also
  /// re-gated on the SDL_OBS runtime flag, once per fired component).
  void set_metrics(obs::RuntimeMetrics* m) { metrics_ = m; }

  /// Consensus sets fired so far.
  [[nodiscard]] std::uint64_t fires() const {
    return fires_.load(std::memory_order_relaxed);
  }
  /// Sweeps performed (E8 instrumentation: detection work vs fires).
  [[nodiscard]] std::uint64_t sweeps() const {
    return sweeps_.load(std::memory_order_relaxed);
  }
  /// Fire attempts aborted by an injected claim/commit fault (E16).
  [[nodiscard]] std::uint64_t injected_aborts() const {
    return injected_aborts_.load(std::memory_order_relaxed);
  }

 private:
  /// One full sweep; returns true if at least one component fired (or an
  /// injected fault aborted a fireable one — the caller must re-sweep).
  bool sweep_once();

  Engine& engine_;
  Scheduler& scheduler_;
  FaultInjector* faults_ = nullptr;
  obs::RuntimeMetrics* metrics_ = nullptr;
  std::atomic<bool> dirty_{false};
  std::atomic<bool> sweeping_{false};
  std::atomic<std::uint64_t> fires_{0};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> injected_aborts_{0};
};

}  // namespace sdl
