#include "consensus/consensus.hpp"

#include <unordered_map>
#include <unordered_set>

#include "persist/persist.hpp"

namespace sdl {
namespace {

/// Union-find over node indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

struct Node {
  Process* p = nullptr;
  bool parked = false;         // stable environment; exact imports below
  bool ready = false;          // parked with at least one consensus offer
  std::vector<ConsensusOffer> offers;
  bool everything = false;     // Import(p) ⊇ D (import-all view, parked)
  std::vector<std::pair<TupleId, IndexKey>> imports;  // exact (parked only)
};

/// Per-member evaluation result during a fire attempt.
struct MemberPlan {
  Node* node = nullptr;
  bool ok = false;
  const Transaction* txn = nullptr;
  int branch = -1;
  QueryOutcome outcome;
};

}  // namespace

void ConsensusManager::notify() {
  dirty_.store(true, std::memory_order_release);
  while (!sweeping_.exchange(true, std::memory_order_acq_rel)) {
    while (dirty_.exchange(false, std::memory_order_acq_rel)) {
      while (sweep_once()) {
      }
    }
    sweeping_.store(false, std::memory_order_release);
    if (!dirty_.load(std::memory_order_acquire)) break;
  }
}

bool ConsensusManager::sweep_once() {
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  bool fired_any = false;
  bool injected_abort = false;

  // The composite commit returns every member's touched keys — with heavy
  // duplication when members share buckets — in one list; exclusive()
  // hands it to WaitSet::publish_batch, which dedupes keys and wakes each
  // affected subscriber exactly once for the whole composite.
  engine_.exclusive([&]() -> std::vector<IndexKey> {
    std::vector<IndexKey> touched;

    scheduler_.with_live([&](const std::vector<Process*>& live) {
      Dataspace& space = engine_.space();
      const FunctionRegistry* fns = engine_.functions();

      // ---- 1. Build nodes: snapshot states, gather import sets. ----
      std::vector<Node> nodes;
      nodes.reserve(live.size());
      bool any_ready = false;
      for (Process* p : live) {
        Node n;
        n.p = p;
        {
          std::scoped_lock state_lock(p->state_mutex);
          n.parked = p->state == RunState::Parked;
          if (n.parked && !p->offers.empty()) {
            n.ready = true;
            n.offers = p->offers;
            any_ready = true;
          }
        }
        nodes.push_back(std::move(n));
      }
      if (!any_ready) return;

      const bool space_nonempty = space.size() > 0;
      for (Node& n : nodes) {
        if (!n.parked) continue;  // runnable: bucket summary is used instead
        const View* view = n.p->view_ptr();
        if (view == nullptr || view->imports_everything()) {
          n.everything = true;
        } else {
          view->collect_import_records(space, n.p->env, fns, n.imports);
        }
      }

      // ---- 2. Needs-graph connected components. ----
      UnionFind uf(nodes.size());

      // exact–exact: two parked processes sharing a tuple instance.
      std::unordered_map<TupleId, std::size_t> owner_of;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i].parked || nodes[i].everything) continue;
        for (const auto& [id, key] : nodes[i].imports) {
          auto [it, inserted] = owner_of.emplace(id, i);
          if (!inserted) uf.unite(i, it->second);
        }
      }
      // everything nodes: overlap each other and any node with a
      // nonempty import∩D, provided D itself is nonempty.
      if (space_nonempty) {
        std::size_t first_everything = nodes.size();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          const bool everything_like =
              (nodes[i].parked && nodes[i].everything) ||
              (!nodes[i].parked && nodes[i].p->static_imports.everything);
          if (!everything_like) continue;
          if (first_everything == nodes.size()) {
            first_everything = i;
          } else {
            uf.unite(i, first_everything);
          }
        }
        if (first_everything != nodes.size()) {
          for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (i == first_everything) continue;
            if (nodes[i].parked && !nodes[i].everything) {
              if (!nodes[i].imports.empty()) uf.unite(i, first_everything);
            } else if (!nodes[i].parked && !nodes[i].p->static_imports.everything) {
              // Conservative: a runnable process with any potentially
              // nonempty bucket coverage overlaps the everything group.
              bool nonempty = false;
              for (const IndexKey& k : nodes[i].p->static_imports.keys) {
                space.scan_key(k, [&](const Record&) {
                  nonempty = true;
                  return false;
                });
                if (nonempty) break;
              }
              if (!nonempty) {
                for (std::uint32_t a : nodes[i].p->static_imports.arities) {
                  space.scan_arity(a, [&](const Record&) {
                    nonempty = true;
                    return false;
                  });
                  if (nonempty) break;
                }
              }
              if (nonempty) uf.unite(i, first_everything);
            }
          }
        }
      }
      // exact–conservative: a parked process's imported tuple falls in a
      // runnable process's bucket summary.
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i].parked || nodes[i].everything) continue;
        for (std::size_t j = 0; j < nodes.size(); ++j) {
          if (nodes[j].parked) continue;
          const ImportSummary& summary = nodes[j].p->static_imports;
          if (summary.everything) continue;  // handled above
          for (const auto& [id, key] : nodes[i].imports) {
            if (summary.may_cover(key)) {
              uf.unite(i, j);
              break;
            }
          }
        }
      }
      // (runnable–runnable edges are irrelevant: a component containing a
      // runnable process never fires, and merging two blocked components
      // changes nothing.)

      // ---- 3. Group components; a component fires only if every member
      //         is ready (parked with offers). ----
      std::unordered_map<std::size_t, std::vector<std::size_t>> components;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        components[uf.find(i)].push_back(i);
      }

      for (auto& [root, member_idx] : components) {
        bool all_ready = true;
        for (std::size_t i : member_idx) {
          if (!nodes[i].ready) {
            all_ready = false;
            break;
          }
        }
        if (!all_ready) continue;

        // Claim-to-fire span: from the first member claim to the last
        // member resumed + the composite WAL record logged. Recorded only
        // for components that actually fire (reverts and injected aborts
        // are not fires).
        obs::RuntimeMetrics* const obs_m =
            (metrics_ != nullptr && obs::enabled()) ? metrics_ : nullptr;
        const std::uint64_t t_claim0 =
            obs_m != nullptr ? obs::now_ns() : 0;

        // ---- 4. Claim members. ----
        std::vector<Node*> claimed;
        bool claim_ok = true;
        for (std::size_t i : member_idx) {
          Process* p = nodes[i].p;
          std::scoped_lock state_lock(p->state_mutex);
          if (p->state == RunState::Parked && !p->offers.empty()) {
            p->state = RunState::Claimed;
            claimed.push_back(&nodes[i]);
          } else {
            claim_ok = false;
            break;
          }
        }

        auto revert = [&] {
          for (Node* n : claimed) {
            Process* p = n->p;
            bool enqueue = false;
            {
              std::scoped_lock state_lock(p->state_mutex);
              if (p->pending_wake) {
                p->pending_wake = false;
                p->state = RunState::Ready;
                enqueue = true;
              } else {
                p->state = RunState::Parked;
              }
            }
            if (enqueue) scheduler_.enqueue_ready(p->pid);
          }
        };

        if (!claim_ok) {
          revert();
          continue;
        }

        // Injection point: every member is Claimed, offers not yet
        // evaluated. FailCommit aborts through the same revert path a
        // lost claim race takes — members return to Parked with offers
        // intact and the sweep retries, proving an abort here cannot
        // wedge the set.
        if (faults_ != nullptr) {
          switch (faults_->decide(FaultPoint::ConsensusClaim)) {
            case FaultAction::Delay:
              faults_->delay();
              break;
            case FaultAction::FailCommit:
              injected_aborts_.fetch_add(1, std::memory_order_relaxed);
              injected_abort = true;
              revert();
              continue;
            default:
              break;
          }
        }

        // ---- 5. Evaluate every member's offers against the pre-state. ----
        std::vector<MemberPlan> plans;
        plans.reserve(claimed.size());
        bool eval_ok = true;
        for (Node* n : claimed) {
          Process* p = n->p;
          MemberPlan plan;
          plan.node = n;
          for (const ConsensusOffer& offer : n->offers) {
            QueryOutcome outcome;
            if (p->view_ptr() != nullptr && !p->view_ptr()->imports_everything()) {
              const WindowSource window(space, *p->view_ptr(), p->env, fns,
                                        obs_m);
              outcome = offer.txn->query.evaluate(window, p->env, fns);
            } else {
              const DataspaceSource source(space);
              outcome = offer.txn->query.evaluate(source, p->env, fns);
            }
            if (outcome.success) {
              plan.ok = true;
              plan.txn = offer.txn;
              plan.branch = offer.branch;
              plan.outcome = std::move(outcome);
              break;
            }
          }
          if (!plan.ok) {
            eval_ok = false;
            break;
          }
          plans.push_back(std::move(plan));
        }
        if (!eval_ok) {
          revert();
          continue;
        }

        // Injection point: offers evaluated and satisfiable, composite
        // effects not yet applied — the last instant an abort is still
        // effect-free. FailCommit here must leave the dataspace
        // untouched (nothing below has run) and the members re-parked.
        if (faults_ != nullptr) {
          switch (faults_->decide(FaultPoint::ConsensusCommit)) {
            case FaultAction::Delay:
              faults_->delay();
              break;
            case FaultAction::FailCommit:
              injected_aborts_.fetch_add(1, std::memory_order_relaxed);
              injected_abort = true;
              revert();
              continue;
            default:
              break;
          }
        }

        // ---- 6. Composite commit: materialize every member's assertions
        //         against the common pre-state, then all retractions, then
        //         all additions (§2.2's composite rule; materializing
        //         first keeps a throwing field expression from leaving
        //         partial effects). ----
        std::vector<std::vector<Tuple>> to_insert(plans.size());
        for (std::size_t pi = 0; pi < plans.size(); ++pi) {
          const MemberPlan& plan = plans[pi];
          Process* p = plan.node->p;
          for (const QueryMatch& m : plan.outcome.matches) {
            for (const AssertTemplate& a : plan.txn->asserts) {
              std::vector<Value> fields;
              fields.reserve(a.fields.size());
              for (const ExprPtr& fexpr : a.fields) {
                fields.push_back(fexpr->eval(m.binding, fns));
              }
              Tuple t(std::move(fields));
              if (p->view_ptr() != nullptr &&
                  !p->view_ptr()->exports_everything()) {
                Env scratch = m.binding;
                if (!p->view_ptr()->exports_tuple(t, scratch, fns)) continue;
              }
              to_insert[pi].push_back(std::move(t));
            }
          }
        }
        // WAL: a consensus fire is ONE atomic record — every member's
        // retractions and assertions under the common fire ordinal, logged
        // below while total exclusion is still held. Recovery replays the
        // record atomically, preserving the composite's all-or-nothing
        // semantics across a crash.
        persist::PersistManager* wal = engine_.persist();
        Engine::DurableEffects durable;
        std::unordered_set<TupleId> retracted;
        for (const MemberPlan& plan : plans) {
          for (const QueryMatch& m : plan.outcome.matches) {
            for (const auto& [key, id] : m.retract) {
              if (!retracted.insert(id).second) continue;
              if (space.erase(key, id) && wal != nullptr) {
                durable.retracts.push_back(id);
              }
              touched.push_back(key);
            }
          }
        }
        // History: every member's entry carries the same nonzero fire
        // ordinal, and all entries are sequenced here under exclusive() —
        // the checker replays them as one atomic composite and verifies
        // they stayed contiguous in the witness order. Per-member retract
        // sets record the member's *intent*; the composite dedupe is the
        // checker's to reapply.
        HistoryRecorder* history = engine_.history();
        if (history != nullptr && !history->enabled()) history = nullptr;
        const std::uint64_t fire_id =
            fires_.load(std::memory_order_relaxed) + 1;
        for (std::size_t pi = 0; pi < plans.size(); ++pi) {
          MemberPlan& plan = plans[pi];
          Process* p = plan.node->p;
          TxnResult result;
          result.success = true;
          for (Tuple& t : to_insert[pi]) {
            const IndexKey key = IndexKey::of(t);
            Tuple wal_copy;
            if (wal != nullptr) wal_copy = t;
            const TupleId id = space.insert(std::move(t), p->pid);
            result.asserted.push_back(id);
            if (wal != nullptr) durable.asserts.emplace_back(id, std::move(wal_copy));
            touched.push_back(key);
          }
          if (history != nullptr) {
            std::vector<TupleId> reads;
            std::vector<TupleId> member_retracts;
            for (const QueryMatch& m : plan.outcome.matches) {
              reads.insert(reads.end(), m.reads.begin(), m.reads.end());
              for (const auto& [key, id] : m.retract) {
                (void)key;
                member_retracts.push_back(id);
              }
            }
            history->record_commit(p->pid, fire_id, std::move(reads),
                                   std::move(member_retracts), result.asserted,
                                   plan.txn->to_string());
          }
          result.matches = std::move(plan.outcome.matches);

          // ---- 7. Resume the member with its result. ----
          {
            std::scoped_lock state_lock(p->state_mutex);
            p->consensus_result = ConsensusResult{plan.branch, std::move(result)};
            p->state = RunState::Ready;
            p->pending_wake = false;
          }
          scheduler_.enqueue_ready(p->pid);
        }
        if (wal != nullptr &&
            (!durable.retracts.empty() || !durable.asserts.empty())) {
          wal->log_commit(kEnvironmentProcess, fire_id, durable.retracts,
                          durable.asserts);
        }
        fires_.fetch_add(1, std::memory_order_relaxed);
        if (obs_m != nullptr) {
          obs_m->consensus_claim_fire_ns->record(obs::now_ns() - t_claim0);
        }
        fired_any = true;
      }
    });

    return touched;
  });

  // An injected abort left a fireable component un-fired: report progress
  // so notify() sweeps again (the decision stream has advanced, so a
  // bounded or probabilistic fault eventually lets the fire through).
  return fired_any || injected_abort;
}

}  // namespace sdl
