#include "fault/fault.hpp"

#include <chrono>
#include <thread>

namespace sdl {
namespace {

/// splitmix64 — the decision stream's mixer. Statistical quality is ample
/// for firing decisions, and it is a pure function, which is the property
/// that makes the stream deterministic under any thread interleaving.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* fault_point_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::EngineCommit: return "engine-commit";
    case FaultPoint::WaitSetPublish: return "waitset-publish";
    case FaultPoint::WakeDeliver: return "wake-deliver";
    case FaultPoint::SchedulerDispatch: return "scheduler-dispatch";
    case FaultPoint::ConsensusClaim: return "consensus-claim";
    case FaultPoint::ConsensusCommit: return "consensus-commit";
    case FaultPoint::WalAppend: return "wal-append";
    case FaultPoint::SnapshotWrite: return "snapshot-write";
    case FaultPoint::AdmissionShed: return "admission-shed";
    case FaultPoint::RetryBudgetExhausted: return "retry-budget-exhausted";
    case FaultPoint::ReplSend: return "repl-send";
    case FaultPoint::ReplApply: return "repl-apply";
  }
  return "?";
}

const char* fault_action_name(FaultAction a) {
  switch (a) {
    case FaultAction::None: return "none";
    case FaultAction::Delay: return "delay";
    case FaultAction::SpuriousWake: return "spurious-wake";
    case FaultAction::FailCommit: return "fail-commit";
    case FaultAction::Kill: return "kill";
  }
  return "?";
}

void FaultInjector::arm(FaultPoint point, FaultAction action,
                        std::uint32_t permille, std::uint64_t max_fires) {
  Point& pt = points_[static_cast<std::size_t>(point)];
  // Quiesce the point before replacing its configuration so a concurrent
  // decide() never fires the new action against the old budget.
  pt.action.store(static_cast<std::uint8_t>(FaultAction::None),
                  std::memory_order_release);
  pt.permille.store(permille > 1000 ? 1000 : permille, std::memory_order_relaxed);
  pt.remaining.store(max_fires == 0 ? -1 : static_cast<std::int64_t>(max_fires),
                     std::memory_order_relaxed);
  pt.ordinal.store(0, std::memory_order_relaxed);
  pt.fired.store(0, std::memory_order_relaxed);
  pt.action.store(static_cast<std::uint8_t>(action), std::memory_order_release);
}

void FaultInjector::disarm(FaultPoint point) {
  points_[static_cast<std::size_t>(point)].action.store(
      static_cast<std::uint8_t>(FaultAction::None), std::memory_order_release);
}

FaultAction FaultInjector::decide(FaultPoint point) {
  Point& pt = points_[static_cast<std::size_t>(point)];
  const auto action =
      static_cast<FaultAction>(pt.action.load(std::memory_order_acquire));
  if (action == FaultAction::None) return FaultAction::None;
  const std::uint64_t ord = pt.ordinal.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h =
      mix(seed_ ^ (static_cast<std::uint64_t>(point) << 56) ^ ord);
  if (h % 1000 >= pt.permille.load(std::memory_order_relaxed)) {
    return FaultAction::None;
  }
  // Bounded budget: claim one fire; losers of the last slot see None.
  if (pt.remaining.load(std::memory_order_relaxed) >= 0) {
    if (pt.remaining.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
      pt.remaining.store(0, std::memory_order_relaxed);
      return FaultAction::None;
    }
  }
  pt.fired.fetch_add(1, std::memory_order_relaxed);
  return action;
}

void FaultInjector::delay() {
  const std::uint64_t us = jitter_us(99);
  std::this_thread::yield();
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

std::uint64_t FaultInjector::jitter_us(std::uint64_t max_us) {
  if (max_us == 0) return 0;
  const std::uint64_t ord =
      jitter_ordinal_.fetch_add(1, std::memory_order_relaxed);
  return mix(seed_ ^ 0xfa017ull ^ ord) % (max_us + 1);
}

std::uint64_t FaultInjector::crossings(FaultPoint point) const {
  return points_[static_cast<std::size_t>(point)].ordinal.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(FaultPoint point) const {
  return points_[static_cast<std::size_t>(point)].fired.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_fired() const {
  std::uint64_t total = 0;
  for (const Point& pt : points_) {
    total += pt.fired.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace sdl
