// Deterministic fault injection (robustness layer).
//
// The runtime's qualitative guarantees — delayed transactions never lose
// wakeups, consensus sets commit as one atomic transformation, replication
// terminates under total exclusion — are exactly the properties that break
// silently under adverse schedules. The FaultInjector makes those schedules
// reproducible: named injection points are threaded through the engine
// commit path, WaitSet publish/wake delivery, scheduler dispatch, and the
// consensus claim/commit sequence, and each crossing asks the injector for
// a decision that is a pure function of (seed, point, crossing ordinal).
// Thread interleaving stays nondeterministic, but the decision *stream* per
// point does not — rerunning with the same seed re-fires the same subset of
// crossings.
//
// Disabled cost: every call site guards with `if (faults_ != nullptr)`, so
// a runtime that never arms the injector pays one predicted-not-taken
// branch on a null pointer per crossing (measured in E16).
//
// Actions a point can inject (call sites honor the subset that is
// meaningful there and ignore the rest — see docs/IMPLEMENTATION.md for
// the point/action catalog):
//   * Delay        — a forced yield plus a short deterministic-length sleep,
//                    widening the race window the point sits in;
//   * SpuriousWake — an extra wakeup nobody asked for (parked processes
//                    must tolerate it by re-checking and re-parking);
//   * FailCommit   — a transient commit failure: the transaction's query
//                    succeeded but its effects are NOT applied and the
//                    caller sees failure with `injected_fault` set; the
//                    scheduler retries with bounded, jittered backoff;
//   * Kill         — crash the process at the point (scheduler dispatch
//                    only): exercises the crash-safe teardown path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace sdl {

/// Where a fault can be injected. Values index the injector's per-point
/// state; keep kFaultPointCount in sync.
enum class FaultPoint : std::uint8_t {
  EngineCommit = 0,   // engine execute(): query succeeded, effects not yet applied
  WaitSetPublish,     // publish_batch(): before the subscriber maps are probed
  WakeDeliver,        // publish_batch(): callbacks collected, not yet invoked
  SchedulerDispatch,  // worker popped a pid and owns the process
  ConsensusClaim,     // consensus members claimed, offers not yet evaluated
  ConsensusCommit,    // offers evaluated, composite effects not yet applied
  WalAppend,          // WAL writer framed the record, bytes not yet durable
  SnapshotWrite,      // snapshot payload serialized, file not yet renamed
  AdmissionShed,      // overload gate consulted; any armed action forces a shed
  RetryBudgetExhausted,  // retry budget consulted; any armed action denies it
  ReplSend,           // leader tailer: batch framed, not yet handed to the
                      // transport (Delay stalls the stream, Kill drops the
                      // session mid-stream — the follower must reconnect)
  ReplApply,          // follower applier: batch decoded, not yet applied
                      // (FailCommit rejects it for redelivery, Kill tears
                      // the session down mid-apply)
};
inline constexpr std::size_t kFaultPointCount = 12;

enum class FaultAction : std::uint8_t {
  None = 0,
  Delay,
  SpuriousWake,
  FailCommit,
  Kill,
};

[[nodiscard]] const char* fault_point_name(FaultPoint p);
[[nodiscard]] const char* fault_action_name(FaultAction a);

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : seed_(seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `point`: each crossing fires `action` with probability
  /// permille/1000, at most `max_fires` times in total (0 = unlimited).
  /// Re-arming a point replaces its configuration and resets its counters.
  void arm(FaultPoint point, FaultAction action, std::uint32_t permille,
           std::uint64_t max_fires = 0);

  /// Disarms one point (subsequent decisions return None).
  void disarm(FaultPoint point);

  /// One crossing of `point`. Returns the action to inject, or None.
  /// Deterministic in (seed, point, per-point crossing ordinal); lock-free.
  [[nodiscard]] FaultAction decide(FaultPoint point);

  /// Performs the Delay action: an OS yield plus a deterministic-length
  /// sleep in [0, 100) microseconds drawn from the decision stream.
  void delay();

  /// Deterministic jitter in [0, max_us] for retry backoff.
  [[nodiscard]] std::uint64_t jitter_us(std::uint64_t max_us);

  /// Crossings seen / faults fired at `point` since it was last armed.
  [[nodiscard]] std::uint64_t crossings(FaultPoint point) const;
  [[nodiscard]] std::uint64_t fired(FaultPoint point) const;
  /// Faults fired across every point.
  [[nodiscard]] std::uint64_t total_fired() const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  struct Point {
    std::atomic<std::uint8_t> action{0};       // FaultAction
    std::atomic<std::uint32_t> permille{0};
    std::atomic<std::int64_t> remaining{-1};   // fires left; -1 = unlimited
    std::atomic<std::uint64_t> ordinal{0};     // crossings since arm()
    std::atomic<std::uint64_t> fired{0};
  };

  const std::uint64_t seed_;
  std::array<Point, kFaultPointCount> points_;
  std::atomic<std::uint64_t> jitter_ordinal_{0};
};

}  // namespace sdl
