#include "control/overload.hpp"

#include "core/epoch.hpp"

namespace sdl::control {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

OverloadControl::OverloadControl(OverloadOptions opts) : options_(opts) {
  // The budget starts full: a cold runtime has banked no successes yet,
  // but startup retries (recovery re-checks, first contended commits) are
  // not a storm — penalizing them would just slow the ramp.
  tokens_milli_.store(static_cast<std::uint64_t>(options_.retry_budget_cap) *
                          1000ull,
                      std::memory_order_relaxed);
}

bool OverloadControl::try_admit(std::int64_t* retry_after_us) {
  // Amortized epoch watchdog: schedulerless hosts (the open-loop bench,
  // raw-API callers) have no watchdog thread, so the backlog check rides
  // the admission stream instead — every 1024th crossing, off the hot path.
  if (options_.epoch_backlog_threshold != 0 &&
      (admit_crossings_.fetch_add(1, std::memory_order_relaxed) & 1023u) ==
          1023u) {
    tick();
  }
  if (FaultInjector* f = faults(); f != nullptr) {
    if (f->decide(FaultPoint::AdmissionShed) != FaultAction::None) {
      stats_.sheds.fetch_add(1, std::memory_order_relaxed);
      if (retry_after_us != nullptr) *retry_after_us = options_.retry_after_us;
      return false;
    }
  }
  if (options_.max_inflight == 0) {
    stats_.admitted.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Optimistic claim + undo on overflow: the gate is crossed once per
  // host transaction, so one fetch_add beats a CAS loop; momentary
  // overshoot by the number of racing claimants is harmless (they all
  // undo).
  const std::size_t prev = inflight_.fetch_add(1, std::memory_order_acquire);
  if (prev >= options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_release);
    stats_.sheds.fetch_add(1, std::memory_order_relaxed);
    if (retry_after_us != nullptr) {
      // Load-scaled hint: the further past the limit demand is, the longer
      // the caller should stay away. `prev` counts the claimants ahead of
      // us, so (prev - limit + 1) is our queue-depth-equivalent.
      const std::size_t excess = prev - options_.max_inflight + 1;
      *retry_after_us = options_.retry_after_us *
                        static_cast<std::int64_t>(excess < 64 ? excess : 64);
    }
    return false;
  }
  stats_.admitted.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void OverloadControl::release() {
  inflight_.fetch_sub(1, std::memory_order_release);
}

bool OverloadControl::try_spend_retry() {
  if (FaultInjector* f = faults(); f != nullptr) {
    if (f->decide(FaultPoint::RetryBudgetExhausted) != FaultAction::None) {
      stats_.retry_denied.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  if (options_.retry_budget_cap == 0) return true;  // budget disabled
  std::uint64_t cur = tokens_milli_.load(std::memory_order_relaxed);
  while (true) {
    if (cur < 1000) {
      stats_.retry_denied.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (tokens_milli_.compare_exchange_weak(cur, cur - 1000,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
      stats_.retry_spent.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

void OverloadControl::deposit() {
  if (options_.retry_budget_cap == 0) return;
  const std::uint64_t cap =
      static_cast<std::uint64_t>(options_.retry_budget_cap) * 1000ull;
  const std::uint64_t add = options_.retry_deposit_millitokens;
  std::uint64_t cur = tokens_milli_.load(std::memory_order_relaxed);
  while (cur < cap) {
    const std::uint64_t next = cur + add < cap ? cur + add : cap;
    if (tokens_milli_.compare_exchange_weak(cur, next,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
      return;
    }
  }
}

bool OverloadControl::optimistic_allowed() {
  if (options_.breaker_failure_threshold == 0) return true;
  int state = breaker_.load(std::memory_order_acquire);
  if (state == kClosed) return true;
  if (state == kOpen) {
    if (steady_now_ns() < reopen_at_ns_.load(std::memory_order_relaxed)) {
      return false;
    }
    // Cooldown elapsed: exactly one caller wins the HalfOpen probe slot.
    if (breaker_.compare_exchange_strong(state, kHalfOpen,
                                         std::memory_order_acq_rel)) {
      return true;
    }
    return false;
  }
  // HalfOpen: the probe is already in flight; everyone else keeps to the
  // locked path until it reports.
  return false;
}

void OverloadControl::on_optimistic_ok() {
  consecutive_fallbacks_.store(0, std::memory_order_relaxed);
  int state = breaker_.load(std::memory_order_acquire);
  if (state == kHalfOpen) {
    breaker_.compare_exchange_strong(state, kClosed,
                                     std::memory_order_acq_rel);
  }
}

void OverloadControl::on_optimistic_fallback() {
  if (options_.breaker_failure_threshold == 0) return;
  int state = breaker_.load(std::memory_order_acquire);
  if (state == kHalfOpen) {
    // The probe itself failed validation: the write pressure is still
    // there — re-open without waiting for a fallback streak.
    trip_breaker();
    return;
  }
  const std::uint32_t streak =
      consecutive_fallbacks_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= options_.breaker_failure_threshold) {
    consecutive_fallbacks_.store(0, std::memory_order_relaxed);
    trip_breaker();
  }
}

void OverloadControl::trip_breaker() {
  if (options_.breaker_failure_threshold == 0) return;
  reopen_at_ns_.store(
      steady_now_ns() + options_.breaker_open_ms * 1'000'000,
      std::memory_order_relaxed);
  if (breaker_.exchange(kOpen, std::memory_order_acq_rel) != kOpen) {
    stats_.breaker_trips.fetch_add(1, std::memory_order_relaxed);
  }
}

int OverloadControl::breaker_state() const {
  return breaker_.load(std::memory_order_acquire);
}

void OverloadControl::tick() {
  if (options_.epoch_backlog_threshold == 0) return;
  if (epoch::backlog() <= options_.epoch_backlog_threshold) return;
  // Backlog past threshold: readers (or a stalled thread) are pinning
  // epochs while retirement outpaces collection. Force the advance+collect
  // cycle — and since the optimistic read path is what pins epochs at
  // scale, circuit-break it so the backlog can actually drain.
  stats_.forced_drains.fetch_add(1, std::memory_order_relaxed);
  epoch::drain();
  trip_breaker();
}

}  // namespace sdl::control
