// Overload protection: admission control, retry budgets and circuit
// breaking (robustness tentpole).
//
// Every retry mechanism in the runtime is an *amplifier* under overload:
// transient-commit backoff re-offers the same transaction, optimistic-read
// validation failures re-evaluate the same query, parked processes pile
// into WaitSet buckets, and the WAL group-commit batch grows without bound
// when the flusher lags the committers. Each is individually correct and
// collectively a collapse mechanism — at saturation they multiply offered
// load exactly when capacity is gone ("Tuple spaces implementations and
// their efficiency" documents the resulting cliff in comparable runtimes).
//
// OverloadControl is the shared brake. One instance per Runtime, threaded
// through the engine, scheduler, WaitSet and WAL writer with the same
// null-gated-pointer idiom as the FaultInjector: a runtime that never arms
// it pays one predicted-not-taken branch per crossing, and a disarmed
// limit (its option left 0) is skipped inside the armed instance too, so
// arming only the admission gate changes nothing else.
//
// Mechanisms (state machines documented in docs/IMPLEMENTATION.md §15):
//   * ADMISSION GATE — a bounded in-flight budget for host-submitted
//     transactions (Runtime::execute). At the limit the transaction is
//     rejected immediately with TxnResult::shed and a load-scaled
//     RetryAfter hint instead of queueing: rejecting early is the only
//     move that costs less than the work being rejected.
//   * RETRY BUDGET — a token bucket both retry loops draw from. Each
//     successful transaction deposits a fraction of a token; each retry
//     (transient-commit or optimistic-validation) spends a whole one.
//     Under goodput the bucket stays full and retries are free; in a
//     retry storm deposits stop, the bucket drains, and retriers decay to
//     their fallback path (requeue / shared-lock read) instead of
//     multiplying attempts.
//   * CIRCUIT BREAKER — Closed/Open/HalfOpen over the optimistic read
//     path. Consecutive validation-exhausted fallbacks or an epoch-
//     reclamation backlog past threshold trip it Open: reads go straight
//     to the always-correct shared-lock path (no wasted unlocked
//     evaluations). After `breaker_open_ms` one probe is let through
//     (HalfOpen); success closes the breaker, failure re-opens it.
//   * BACKPRESSURE CAPS — per-bucket WaitSet park-set saturation (the
//     scheduler converts parks into short-deadline parks so the watchdog
//     sheds them) and a WAL group-commit batch byte cap (committers block
//     on the flusher instead of growing the batch without bound).
//   * EPOCH WATCHDOG — when the retired-not-freed backlog crosses
//     `epoch_backlog_threshold`, force an advance+collect cycle and trip
//     the breaker (a large backlog means readers are pinning epochs —
//     the optimistic path is the pressure source).
//
// Every decision is counted in OverloadStats (exported as obs gauges by
// the Runtime) and can be forced deterministically through the
// FaultInjector's AdmissionShed / RetryBudgetExhausted points.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "fault/fault.hpp"

namespace sdl::control {

struct OverloadOptions {
  /// Admission gate: max host transactions in flight; 0 = unlimited.
  std::size_t max_inflight = 0;
  /// Base RetryAfter hint on a shed, in µs (scaled up with excess load).
  std::int64_t retry_after_us = 200;
  /// WaitSet per-bucket park-set cap; 0 = unlimited. Parks into a
  /// saturated bucket get a forced short deadline instead of parking
  /// forever (the watchdog sheds them as timeouts).
  std::size_t max_parked_per_bucket = 0;
  /// Forced park deadline for saturated buckets, ms. Must be > 0 when
  /// max_parked_per_bucket is set.
  std::int64_t saturated_park_timeout_ms = 25;
  /// WAL group-commit batch cap in bytes; 0 = unlimited. Committers block
  /// until the flusher drains the batch (bounded memory, bounded ack lag).
  std::size_t wal_max_batch_bytes = 0;
  /// Epoch reclamation backlog (retired-not-freed nodes) that forces an
  /// advance+collect and trips the breaker; 0 = watchdog off.
  std::size_t epoch_backlog_threshold = 0;
  /// Retry budget capacity in whole tokens (also the initial fill);
  /// 0 = budget disabled (every try_spend_retry succeeds).
  std::uint32_t retry_budget_cap = 0;
  /// Tokens deposited per successful transaction, in thousandths (100 =
  /// 0.1 token — ten successes buy one retry).
  std::uint32_t retry_deposit_millitokens = 100;
  /// Consecutive optimistic-read fallbacks that trip the breaker;
  /// 0 = breaker disabled (optimistic path never circuit-broken).
  std::uint32_t breaker_failure_threshold = 0;
  /// How long the breaker stays Open before letting a HalfOpen probe
  /// through, ms.
  std::int64_t breaker_open_ms = 10;

  /// Any mechanism armed? The Runtime only instantiates (and wires) an
  /// OverloadControl when true, so default-constructed options cost
  /// nothing anywhere.
  [[nodiscard]] bool enabled() const {
    return max_inflight != 0 || max_parked_per_bucket != 0 ||
           wal_max_batch_bytes != 0 || epoch_backlog_threshold != 0 ||
           retry_budget_cap != 0 || breaker_failure_threshold != 0;
  }
};

/// Decision counters — relaxed atomics, always exact (these are shed/
/// throttle decisions, not per-op hot-path samples). The Runtime bridges
/// them into the obs registry as pull gauges.
struct OverloadStats {
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> sheds{0};            // admission rejections
  std::atomic<std::uint64_t> retry_spent{0};      // retries the budget paid for
  std::atomic<std::uint64_t> retry_denied{0};     // retries refused (bucket dry)
  std::atomic<std::uint64_t> breaker_trips{0};    // Closed/HalfOpen -> Open
  std::atomic<std::uint64_t> wal_waits{0};        // committer blocked on flusher
  std::atomic<std::uint64_t> park_saturated{0};   // parks into a full bucket
  std::atomic<std::uint64_t> forced_drains{0};    // epoch watchdog interventions
  std::atomic<std::uint64_t> repl_backpressure{0};  // writes shed on follower lag
};

class OverloadControl {
 public:
  explicit OverloadControl(OverloadOptions opts);
  OverloadControl(const OverloadControl&) = delete;
  OverloadControl& operator=(const OverloadControl&) = delete;

  // --- admission gate -----------------------------------------------------
  /// Claims one in-flight slot. Returns false (a shed) when the gate is at
  /// its limit or the AdmissionShed fault point forces one; then
  /// `*retry_after_us` carries the backoff hint, scaled by how far over
  /// the limit demand currently is. Callers MUST pair a true return with
  /// exactly one release(). Every ~1k admissions the epoch watchdog check
  /// runs amortized here, so schedulerless hosts (open-loop benches) get
  /// backlog protection without a watchdog thread.
  [[nodiscard]] bool try_admit(std::int64_t* retry_after_us);
  void release();
  [[nodiscard]] std::size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  // --- retry budget -------------------------------------------------------
  /// Spends one token for a retry. False = budget dry (or the
  /// RetryBudgetExhausted point forced it): the caller must take its
  /// fallback path instead of retrying.
  [[nodiscard]] bool try_spend_retry();
  /// Deposits the per-success fraction (commits refill the budget —
  /// goodput is what makes retries affordable).
  void deposit();
  /// Current whole tokens (diagnostics/gauges).
  [[nodiscard]] std::uint64_t retry_tokens() const {
    return tokens_milli_.load(std::memory_order_relaxed) / 1000;
  }

  // --- circuit breaker ----------------------------------------------------
  /// May the optimistic read path run right now? Closed: yes. Open: no,
  /// until breaker_open_ms elapses — then exactly one caller wins the
  /// HalfOpen probe slot (true) while the rest keep falling back.
  [[nodiscard]] bool optimistic_allowed();
  /// A validated optimistic read: closes a HalfOpen breaker, clears the
  /// consecutive-fallback count.
  void on_optimistic_ok();
  /// An optimistic read exhausted its attempts (or its retry budget) and
  /// fell back. Consecutive fallbacks past the threshold trip the breaker;
  /// a HalfOpen probe failing re-opens it immediately.
  void on_optimistic_fallback();
  /// Force Open (epoch watchdog, tests).
  void trip_breaker();
  /// 0 = Closed, 1 = Open, 2 = HalfOpen (gauge encoding).
  [[nodiscard]] int breaker_state() const;

  // --- epoch watchdog -----------------------------------------------------
  /// Checks epoch::backlog() against the threshold; past it, forces an
  /// advance+collect cycle and trips the breaker. Called by the
  /// scheduler's watchdog each tick and amortized from try_admit().
  void tick();

  /// Arms the AdmissionShed / RetryBudgetExhausted points (null disables).
  void set_fault_injector(FaultInjector* f) {
    faults_.store(f, std::memory_order_release);
  }

  [[nodiscard]] const OverloadOptions& options() const { return options_; }
  [[nodiscard]] OverloadStats& stats() { return stats_; }

 private:
  enum : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
  [[nodiscard]] FaultInjector* faults() const {
    return faults_.load(std::memory_order_acquire);
  }

  const OverloadOptions options_;
  OverloadStats stats_;
  std::atomic<FaultInjector*> faults_{nullptr};

  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> admit_crossings_{0};  // amortized-tick counter

  /// Token bucket in millitokens so fractional deposits stay integral.
  std::atomic<std::uint64_t> tokens_milli_{0};

  std::atomic<int> breaker_{kClosed};
  std::atomic<std::uint32_t> consecutive_fallbacks_{0};
  /// steady_clock deadline (ns since epoch) after which Open may HalfOpen.
  std::atomic<std::int64_t> reopen_at_ns_{0};
};

}  // namespace sdl::control
