// sdl_run — execute an SDL source file.
//
//   ./build/examples/sdl_run examples/sdl/sum3.sdl
//   ./build/examples/sdl_run --trace examples/sdl/find.sdl
//
// Registers the host functions the paper's examples rely on (neighbor/T,
// over a 16-wide pixel grid) so the region-labeling scripts run as-is.
// Prints the final dataspace and the run report.
#include <cstring>
#include <fstream>
#include <iostream>

#include "lang/analyze.hpp"
#include "lang/compile.hpp"
#include "trace/timeline.hpp"

using namespace sdl;

int main(int argc, char** argv) {
  bool trace = false;
  bool timeline = false;
  bool stats = false;
  bool check = false;
  const char* html_path = nullptr;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      timeline = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--html") == 0 && i + 1 < argc) {
      html_path = argv[++i];
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::cerr << "usage: sdl_run [--trace] [--timeline] [--stats] [--check] "
                 "[--html out.html] <file.sdl>\n";
    return 2;
  }

  RuntimeOptions options;
  options.tracing = trace || timeline || html_path != nullptr;
  Runtime rt(options);

  constexpr std::int64_t kGridWidth = 16;
  rt.functions().register_function("neighbor", [](std::span<const Value> a) -> Value {
    const std::int64_t p = a[0].as_int();
    const std::int64_t q = a[1].as_int();
    const std::int64_t dx = p % kGridWidth - q % kGridWidth;
    const std::int64_t dy = p / kGridWidth - q / kGridWidth;
    return (dx == 0 || dx == 1 || dx == -1) && (dy == 0 || dy == 1 || dy == -1) &&
           (dx != 0) != (dy != 0);
  });
  rt.functions().register_function("T", [](std::span<const Value> a) -> Value {
    return a[0].as_int() >= 128 ? 1 : 0;
  });

  try {
    lang::Program program = lang::parse_file(path);
    if (check) {
      const std::vector<lang::Diagnostic> diags = lang::analyze(program);
      bool errors = false;
      for (const lang::Diagnostic& d : diags) {
        std::cout << d.to_string() << "\n";
        errors |= d.severity == lang::Severity::Error;
      }
      if (diags.empty()) std::cout << "no diagnostics\n";
      if (errors) return 1;
    }
    lang::load_program(rt, std::move(program));
  } catch (const lang::ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const RunReport report = rt.run();

  std::cout << "-- final dataspace (" << rt.space().size() << " tuples) --\n";
  for (const Record& r : rt.space().snapshot()) {
    std::cout << "  " << r.tuple.to_string() << "   " << r.id.to_string() << "\n";
  }
  std::cout << "-- run report --\n"
            << "  completed: " << report.completed << "\n"
            << "  parked:    " << report.still_parked << "\n";
  for (const std::string& p : report.parked) std::cout << "    " << p << "\n";
  for (const std::string& e : report.errors) std::cout << "  error: " << e << "\n";
  if (trace) {
    std::cout << "-- trace (" << rt.trace().total_recorded() << " events) --\n";
    rt.trace().dump_text(std::cout);
  }
  if (timeline) {
    std::cout << "-- timeline --\n";
    render_ascii(summarize(rt.trace().events()), std::cout);
  }
  if (stats) {
    std::cout << "-- stats --\n" << rt.stats().to_string();
  }
  // Populated only when SDL_OBS is on: the nonzero-instrument digest of
  // the metrics registry (per-txn spans, lock contention, window costs).
  if (!report.metrics.empty()) {
    std::cout << "-- metrics (SDL_OBS) --\n" << report.metrics;
  }
  if (html_path != nullptr) {
    std::ofstream out(html_path);
    if (!out) {
      std::cerr << "cannot write " << html_path << "\n";
      return 1;
    }
    render_html(summarize(rt.trace().events()), out);
    std::cout << "timeline written to " << html_path << "\n";
  }
  return report.clean() ? 0 : 1;
}
