// Quickstart: a five-minute tour of the SDL runtime's C++ API.
//
//   1. Direct dataspace transactions (assert / query / retract).
//   2. Immediate vs delayed transactions.
//   3. A two-process producer/consumer society.
//   4. The same society written in SDL source, run through the frontend.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "lang/compile.hpp"
#include "process/runtime.hpp"

using namespace sdl;

int main() {
  std::cout << "== 1. the dataspace ==\n";
  Runtime rt;

  // The dataspace is a multiset of tuples; seed a few as the environment.
  rt.seed(tup("year", 87));
  rt.seed(tup("year", 90));
  rt.seed(tup("author", Value::atom("roman")));
  std::cout << "seeded " << rt.space().size() << " tuples\n";

  // A transaction = query + retractions + assertions, atomically. This is
  // the paper's example: find a year beyond 87, retract it, record it.
  Transaction find = TxnBuilder(TxnType::Immediate)
                         .exists({"a"})
                         .match(pat({A("year"), V("a")}), /*retract=*/true)
                         .where(gt(evar("a"), lit(87)))
                         .let_("N", evar("a"))
                         .assert_tuple({lit(Value::atom("found")), evar("a")})
                         .build();
  SymbolTable symbols;
  find.resolve(symbols);
  Env env(static_cast<std::size_t>(symbols.size()));

  const TxnResult r = rt.execute(find, env);
  std::cout << "immediate transaction: " << (r.success ? "committed" : "failed")
            << ", N = " << env[static_cast<std::size_t>(*symbols.lookup("N"))]
            << "\n";
  std::cout << "dataspace now has <found, 90>: "
            << rt.space().count(tup("found", 90)) << " instance(s)\n";

  // The same transaction again fails — no qualifying year remains — and,
  // being immediate, it fails *now* instead of blocking.
  std::cout << "retry: " << (rt.execute(find, env).success ? "committed" : "failed")
            << " (no year > 87 left)\n";

  std::cout << "\n== 2. a process society ==\n";
  // Processes are defined once and spawned many times. The consumer uses
  // a *delayed* transaction ('=>' in SDL): it blocks until a producer
  // makes its query satisfiable.
  ProcessDef producer;
  producer.name = "Producer";
  producer.params = {"n"};
  producer.body = seq({stmt(
      TxnBuilder().assert_tuple({lit(Value::atom("item")), evar("n")}).build())});
  rt.define(std::move(producer));

  ProcessDef consumer;
  consumer.name = "Consumer";
  consumer.body = seq({stmt(TxnBuilder(TxnType::Delayed)
                                .exists({"v"})
                                .match(pat({A("item"), V("v")}), true)
                                .assert_tuple({lit(Value::atom("consumed")),
                                               evar("v")})
                                .build())});
  rt.define(std::move(consumer));

  rt.spawn("Consumer");        // parks until an item appears
  rt.spawn("Producer", {Value(7)});
  const RunReport report = rt.run();
  std::cout << "society quiesced: " << report.completed << " processes completed, "
            << (report.deadlocked() ? "DEADLOCK" : "no deadlock") << "\n";
  std::cout << "<consumed, 7> present: " << rt.space().count(tup("consumed", 7))
            << "\n";

  std::cout << "\n== 3. the same thing in SDL source ==\n";
  Runtime rt2;
  lang::load_source(rt2, R"(
    process Producer(n)
    behavior
      -> [item, n]
    end

    process Consumer
    behavior
      exists v : [item, v]! => [consumed, v]
    end

    spawn Consumer()
    spawn Producer(7)
  )");
  rt2.run();
  std::cout << "<consumed, 7> present: " << rt2.space().count(tup("consumed", 7))
            << "\n";

  const bool ok = rt.space().count(tup("consumed", 7)) == 1 &&
                  rt2.space().count(tup("consumed", 7)) == 1;
  std::cout << (ok ? "\nquickstart OK\n" : "\nquickstart FAILED\n");
  return ok ? 0 : 1;
}
