// §3.2 Property List — accessing and sorting a distributed linked list.
//
//   Search(id, P): recursive traversal, recursion replaced by dynamic
//                  process creation.
//   Find(P):       content addressing — no traversal at all.
//   Sort:          one process per adjacent node pair, views confined to
//                  the two nodes, consensus transaction detecting global
//                  sortedness (distributed termination detection).
//
// Run:  ./build/examples/property_list [n_nodes]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "process/runtime.hpp"

using namespace sdl;

namespace {

RuntimeOptions opts() {
  RuntimeOptions o;
  o.scheduler.workers = 4;
  return o;
}

/// Nodes are <node_id, property_name, value, next_node_id>; names here are
/// "p<i>" atoms with integer values i*10 so sortedness is checkable.
void seed_list(Runtime& rt, int n, unsigned seed) {
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i + 1;
  std::uint64_t state = seed;
  for (int i = n - 1; i > 0; --i) {  // Fisher-Yates
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(state % static_cast<std::uint64_t>(i + 1))]);
  }
  for (int i = 1; i <= n; ++i) {
    const int p = order[static_cast<std::size_t>(i - 1)];
    rt.seed(tup(i, Value::atom("p" + std::to_string(p)), p * 10,
                i == n ? Value::atom("nil") : Value(i + 1)));
  }
}

ProcessDef search_def() {
  ProcessDef def;
  def.name = "Search";
  def.params = {"id", "P"};
  def.body = seq({select({
      branch(TxnBuilder()
                 .exists({"v"})
                 .match(pat({E(evar("id")), E(evar("P")), V("v"), W()}))
                 .assert_tuple({evar("P"), evar("v")})
                 .build()),
      branch(TxnBuilder()
                 .exists({"pi"})
                 .match(pat({E(evar("id")), V("pi"), W(), A("nil")}))
                 .where(ne(evar("pi"), evar("P")))
                 .assert_tuple({evar("P"), lit(Value::atom("not_found"))})
                 .build()),
      branch(TxnBuilder()
                 .exists({"rho", "i"})
                 .match(pat({E(evar("id")), V("rho"), W(), V("i")}))
                 .where(land(ne(evar("rho"), evar("P")),
                             ne(evar("i"), lit(Value::atom("nil")))))
                 .spawn("Search", {evar("i"), evar("P")})
                 .build()),
  })});
  return def;
}

ProcessDef find_def() {
  ProcessDef def;
  def.name = "Find";
  def.params = {"P"};
  def.body = seq({select({
      branch(TxnBuilder()
                 .exists({"v"})
                 .match(pat({W(), E(evar("P")), V("v"), W()}))
                 .assert_tuple({evar("P"), evar("v")})
                 .build()),
      branch(TxnBuilder()
                 .none({pat({W(), E(evar("P")), W(), W()})})
                 .assert_tuple({evar("P"), lit(Value::atom("not_found"))})
                 .build()),
  })});
  return def;
}

ProcessDef sort_def() {
  ProcessDef def;
  def.name = "Sort";
  def.params = {"id1", "id2"};
  def.view.import(pat({V("id1"), W(), W(), W()}));
  def.view.import(pat({V("id2"), W(), W(), W()}));
  def.view.export_(pat({V("id1"), W(), W(), W()}));
  def.view.export_(pat({V("id2"), W(), W(), W()}));
  def.body = seq({repeat({
      branch(TxnBuilder()
                 .exists({"p1", "v1", "n1", "p2", "v2", "n2"})
                 .match(pat({E(evar("id1")), V("p1"), V("v1"), V("n1")}), true)
                 .match(pat({E(evar("id2")), V("p2"), V("v2"), V("n2")}), true)
                 .where(gt(evar("v1"), evar("v2")))
                 .assert_tuple({evar("id1"), evar("p2"), evar("v2"), evar("n1")})
                 .assert_tuple({evar("id2"), evar("p1"), evar("v1"), evar("n2")})
                 .build()),
      branch(TxnBuilder(TxnType::Consensus)
                 .exists({"v1", "v2"})
                 .match(pat({E(evar("id1")), W(), V("v1"), W()}))
                 .match(pat({E(evar("id2")), W(), V("v2"), W()}))
                 .where(le(evar("v1"), evar("v2")))
                 .exit_()
                 .build()),
  })});
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  bool ok = true;

  {
    std::cout << "== Search (recursive traversal via process creation) ==\n";
    Runtime rt(opts());
    seed_list(rt, n, 7);
    rt.define(search_def());
    rt.spawn("Search", {Value(1), Value::atom("p3")});
    rt.spawn("Search", {Value(1), Value::atom("zzz")});
    const RunReport report = rt.run();
    ok &= report.clean();
    std::cout << "  <p3, 30>: " << rt.space().count(tup("p3", 30))
              << ", <zzz, not_found>: "
              << rt.space().count(tup("zzz", Value::atom("not_found"))) << "\n";
    ok &= rt.space().count(tup("p3", 30)) == 1;
    ok &= rt.space().count(tup("zzz", Value::atom("not_found"))) == 1;
  }

  {
    std::cout << "== Find (content addressing) ==\n";
    Runtime rt(opts());
    seed_list(rt, n, 7);
    rt.define(find_def());
    rt.spawn("Find", {Value::atom("p3")});
    rt.spawn("Find", {Value::atom("zzz")});
    const RunReport report = rt.run();
    ok &= report.clean();
    std::cout << "  <p3, 30>: " << rt.space().count(tup("p3", 30))
              << ", <zzz, not_found>: "
              << rt.space().count(tup("zzz", Value::atom("not_found"))) << "\n";
    ok &= rt.space().count(tup("p3", 30)) == 1;
  }

  {
    std::cout << "== Sort (pairwise processes + consensus termination) ==\n";
    Runtime rt(opts());
    seed_list(rt, n, 7);
    rt.define(sort_def());
    for (int i = 1; i < n; ++i) rt.spawn("Sort", {Value(i), Value(i + 1)});
    const RunReport report = rt.run();
    ok &= report.clean();
    if (!report.clean()) {
      std::cout << "  NOT CLEAN: parked=" << report.still_parked << "\n";
    }
    bool sorted = true;
    for (int i = 1; i <= n; ++i) {
      rt.space().scan_key(IndexKey::of_head(4, Value(i)), [&](const Record& r) {
        if (r.tuple[2] != Value(i * 10)) sorted = false;
        return true;
      });
    }
    std::cout << "  list sorted by value: " << (sorted ? "yes" : "NO") << "\n";
    ok &= sorted;
  }

  std::cout << (ok ? "property_list OK\n" : "property_list FAILED\n");
  return ok ? 0 : 1;
}
