// Dining philosophers in the shared-dataspace style.
//
// Chopsticks are tuples. A philosopher picks up BOTH chopsticks in one
// atomic multi-tuple transaction — the classic deadlock of
// one-chopstick-at-a-time acquisition cannot occur, which is precisely
// the expressive win of SDL's transactions over Linda's one-tuple `in`
// (§1: "read, assert, and retract one tuple at a time").
//
// Run:  ./build/examples/dining [philosophers] [meals_each]
#include <cstdlib>
#include <iostream>

#include "process/runtime.hpp"

using namespace sdl;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  const int meals = argc > 2 ? std::atoi(argv[2]) : 20;

  RuntimeOptions o;
  o.scheduler.workers = 4;
  Runtime rt(o);

  for (int i = 0; i < n; ++i) rt.seed(tup("chopstick", i));

  // Philosopher(i, left, right): eat `meals` times. The hungry->eating
  // step takes both chopsticks atomically (delayed: waits until both are
  // simultaneously free); the eating->thinking step returns them and
  // decrements the meal counter riding in a tuple.
  ProcessDef phil;
  phil.name = "Philosopher";
  phil.params = {"i", "left", "right"};
  phil.body = seq({
      stmt(TxnBuilder()
               .assert_tuple({lit(Value::atom("meals")), evar("i"), lit(meals)})
               .build()),
      repeat({
          branch(TxnBuilder(TxnType::Delayed)
                     .exists({"m"})
                     .match(pat({A("meals"), E(evar("i")), V("m")}), true)
                     .match(pat({A("chopstick"), E(evar("left"))}), true)
                     .match(pat({A("chopstick"), E(evar("right"))}), true)
                     .where(gt(evar("m"), lit(0)))
                     .assert_tuple({lit(Value::atom("eating")), evar("i"),
                                    evar("m")})
                     .build(),
                 {stmt(TxnBuilder()
                           .exists({"m"})
                           .match(pat({A("eating"), E(evar("i")), V("m")}), true)
                           .assert_tuple({lit(Value::atom("chopstick")),
                                          evar("left")})
                           .assert_tuple({lit(Value::atom("chopstick")),
                                          evar("right")})
                           .assert_tuple({lit(Value::atom("meals")), evar("i"),
                                          sub(evar("m"), lit(1))})
                           .build())}),
          branch(TxnBuilder()
                     .exists({"m"})
                     .match(pat({A("meals"), E(evar("i")), V("m")}), true)
                     .where(eq(evar("m"), lit(0)))
                     .assert_tuple({lit(Value::atom("sated")), evar("i")})
                     .exit_()
                     .build()),
      }),
  });
  rt.define(std::move(phil));

  for (int i = 0; i < n; ++i) {
    rt.spawn("Philosopher", {Value(i), Value(i), Value((i + 1) % n)});
  }

  const RunReport report = rt.run();
  if (!report.clean()) {
    std::cout << "DEADLOCK or error: " << report.still_parked << " parked\n";
    return 1;
  }

  std::size_t sated = 0;
  std::size_t chopsticks = 0;
  for (const Record& r : rt.space().snapshot()) {
    if (r.tuple[0] == Value::atom("sated")) ++sated;
    if (r.tuple[0] == Value::atom("chopstick")) ++chopsticks;
  }
  std::cout << n << " philosophers, " << meals << " meals each\n"
            << "sated: " << sated << ", chopsticks returned: " << chopsticks
            << "\n";
  const bool ok = sated == static_cast<std::size_t>(n) &&
                  chopsticks == static_cast<std::size_t>(n);
  std::cout << (ok ? "dining OK (no deadlock possible: atomic pickup)\n"
                   : "dining FAILED\n");
  return ok ? 0 : 1;
}
