// Conway's Game of Life as an SDL process society — the paper's
// "simulation of clocked systems" (§2.2) made concrete.
//
// One Cell process per pixel of a torus grid; the state of cell p at
// generation g is the tuple [p, g, alive]. Two drive styles:
//
//   async:   Sum2-style — each cell advances as soon as its 8 neighbors'
//            generation-g states exist (delayed transaction). No global
//            synchronization anywhere; generations interleave freely.
//   clocked: Sum1-style — each cell computes, then joins a CONSENSUS
//            barrier; the society advances in lockstep generations, the
//            consensus transaction playing the clock.
//
// Both must agree with a sequential reference simulation.
//
// Run:  ./build/examples/game_of_life [width] [height] [generations]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "process/runtime.hpp"

using namespace sdl;

namespace {

struct Grid {
  int w = 0;
  int h = 0;
  std::vector<int> cells;  // row-major, 0/1
  [[nodiscard]] int at(int x, int y) const {
    return cells[static_cast<std::size_t>(((y + h) % h) * w + ((x + w) % w))];
  }
};

Grid make_grid(int w, int h, unsigned seed) {
  Grid g;
  g.w = w;
  g.h = h;
  g.cells.assign(static_cast<std::size_t>(w * h), 0);
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
  for (auto& c : g.cells) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    c = (state >> 33) % 3 == 0 ? 1 : 0;
  }
  return g;
}

Grid step_reference(const Grid& g) {
  Grid next = g;
  for (int y = 0; y < g.h; ++y) {
    for (int x = 0; x < g.w; ++x) {
      int sum = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          sum += g.at(x + dx, y + dy);
        }
      }
      const int self = g.at(x, y);
      next.cells[static_cast<std::size_t>(y * g.w + x)] =
          (self == 1 && (sum == 2 || sum == 3)) || (self == 0 && sum == 3) ? 1 : 0;
    }
  }
  return next;
}

void register_functions(Runtime& rt, int w, int h) {
  // nbr(p, k): k-th of the 8 torus neighbors of cell p.
  rt.functions().register_function("nbr", [w, h](std::span<const Value> a) -> Value {
    static constexpr int dx[8] = {-1, 0, 1, -1, 1, -1, 0, 1};
    static constexpr int dy[8] = {-1, -1, -1, 0, 0, 1, 1, 1};
    const auto p = static_cast<int>(a[0].as_int());
    const auto k = static_cast<int>(a[1].as_int());
    const int x = (p % w + dx[k] + w) % w;
    const int y = (p / w + dy[k] + h) % h;
    return static_cast<std::int64_t>(y * w + x);
  });
  // life(self, sum): the B3/S23 rule.
  rt.functions().register_function("life", [](std::span<const Value> a) -> Value {
    const std::int64_t self = a[0].as_int();
    const std::int64_t sum = a[1].as_int();
    return static_cast<std::int64_t>(
        (self == 1 && (sum == 2 || sum == 3)) || (self == 0 && sum == 3) ? 1 : 0);
  });
}

/// The compute transaction shared by both variants: read own + 8
/// neighbors' states at generation g, assert own state at g+1.
Transaction compute_txn(TxnType type, int generations) {
  TxnBuilder b(type);
  b.exists({"s", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"});
  b.match(pat({E(evar("p")), E(evar("g")), V("s")}));
  for (int k = 0; k < 8; ++k) {
    b.match(pat({E(call_fn("nbr", {evar("p"), lit(k)})), E(evar("g")),
                 V("s" + std::to_string(k))}));
  }
  ExprPtr sum = evar("s0");
  for (int k = 1; k < 8; ++k) sum = add(std::move(sum), evar("s" + std::to_string(k)));
  return b.where(lt(evar("g"), lit(generations)))
      .assert_tuple({evar("p"), add(evar("g"), lit(1)),
                     call_fn("life", {evar("s"), std::move(sum)})})
      .let_("g", add(evar("g"), lit(1)))
      .build();
}

Transaction exit_txn(int generations) {
  return TxnBuilder()
      .where(ge(evar("g"), lit(generations)))
      .exit_()
      .build();
}

ProcessDef async_cell_def(int generations) {
  ProcessDef def;
  def.name = "Cell";
  def.params = {"p"};
  def.body = seq({
      stmt(TxnBuilder().let_("g", lit(0)).build()),
      repeat({
          branch(exit_txn(generations)),
          branch(compute_txn(TxnType::Delayed, generations)),
      }),
  });
  return def;
}

ProcessDef clocked_cell_def(int generations) {
  ProcessDef def;
  def.name = "Cell";
  def.params = {"p"};
  // Compute immediately (the barrier guarantees inputs exist), then wait
  // at the consensus clock edge before the next generation.
  def.body = seq({
      stmt(TxnBuilder().let_("g", lit(0)).build()),
      repeat({
          branch(exit_txn(generations)),
          branch(compute_txn(TxnType::Immediate, generations),
                 {stmt(TxnBuilder(TxnType::Consensus).build())}),
      }),
  });
  return def;
}

/// Runs a society variant and extracts the generation-K grid.
Grid run_society(const Grid& start, int generations, bool clocked) {
  RuntimeOptions o;
  o.scheduler.workers = 4;
  Runtime rt(o);
  register_functions(rt, start.w, start.h);
  const int n = start.w * start.h;
  for (int p = 0; p < n; ++p) {
    rt.seed(tup(p, 0, start.cells[static_cast<std::size_t>(p)]));
  }
  rt.define(clocked ? clocked_cell_def(generations) : async_cell_def(generations));
  for (int p = 0; p < n; ++p) rt.spawn("Cell", {Value(p)});
  const RunReport report = rt.run();
  if (!report.clean()) {
    std::cerr << (clocked ? "clocked" : "async") << " society did not quiesce ("
              << report.still_parked << " parked)\n";
    std::exit(1);
  }
  Grid out = start;
  for (int p = 0; p < n; ++p) {
    bool found = false;
    rt.space().scan_key(IndexKey::of_head(3, Value(p)), [&](const Record& r) {
      if (r.tuple[1] == Value(generations)) {
        out.cells[static_cast<std::size_t>(p)] =
            static_cast<int>(r.tuple[2].as_int());
        found = true;
      }
      return true;
    });
    if (!found) {
      std::cerr << "cell " << p << " missing generation " << generations << "\n";
      std::exit(1);
    }
  }
  return out;
}

void print_grid(const Grid& g) {
  for (int y = 0; y < g.h; ++y) {
    for (int x = 0; x < g.w; ++x) std::cout << (g.at(x, y) ? '#' : '.');
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int w = argc > 1 ? std::atoi(argv[1]) : 8;
  const int h = argc > 2 ? std::atoi(argv[2]) : 8;
  const int generations = argc > 3 ? std::atoi(argv[3]) : 4;

  Grid start = make_grid(w, h, 2026);
  std::cout << "start (" << w << "x" << h << ", torus):\n";
  print_grid(start);

  Grid want = start;
  for (int gen = 0; gen < generations; ++gen) want = step_reference(want);

  const Grid async_result = run_society(start, generations, /*clocked=*/false);
  const Grid clocked_result = run_society(start, generations, /*clocked=*/true);

  std::cout << "\nafter " << generations << " generations:\n";
  print_grid(want);

  const bool ok = async_result.cells == want.cells &&
                  clocked_result.cells == want.cells;
  std::cout << "\nasync  == reference: "
            << (async_result.cells == want.cells ? "yes" : "NO") << "\n"
            << "clocked == reference: "
            << (clocked_result.cells == want.cells ? "yes" : "NO") << "\n"
            << (ok ? "game_of_life OK\n" : "game_of_life FAILED\n");
  return ok ? 0 : 1;
}
