// §3.3 Region Labeling — the worker model vs the community model.
//
//   Worker model:    one process, one replication; transactions roam the
//                    dataspace seeking work ("workers model, often used in
//                    Linda programming").
//   Community model: a Threshold process spawns one Label process per
//                    pixel; each Label has a *dynamic view* confined to
//                    its 4-neighbors of the same threshold class, so
//                    label-propagation communities form per region and
//                    consensus fires per region.
//
// Both must agree with a sequential connected-component reference.
//
// Run:  ./build/examples/region_labeling [width] [height]
#include <algorithm>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "process/runtime.hpp"

using namespace sdl;

namespace {

struct Image {
  int w = 0;
  int h = 0;
  std::vector<int> intensity;  // row-major
  [[nodiscard]] int at(int x, int y) const {
    return intensity[static_cast<std::size_t>(y * w + x)];
  }
};

/// Synthetic image: blobs of bright pixels on a dark background (seeded).
Image make_image(int w, int h, unsigned seed) {
  Image img;
  img.w = w;
  img.h = h;
  img.intensity.assign(static_cast<std::size_t>(w * h), 10);
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
  auto rnd = [&](int m) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<int>((state >> 33) % static_cast<std::uint64_t>(m));
  };
  const int blobs = std::max(2, (w * h) / 24);
  for (int b = 0; b < blobs; ++b) {
    const int cx = rnd(w);
    const int cy = rnd(h);
    const int r = 1 + rnd(2);
    for (int y = std::max(0, cy - r); y <= std::min(h - 1, cy + r); ++y) {
      for (int x = std::max(0, cx - r); x <= std::min(w - 1, cx + r); ++x) {
        img.intensity[static_cast<std::size_t>(y * w + x)] = 200;
      }
    }
  }
  return img;
}

int threshold(int v) { return v >= 128 ? 1 : 0; }

/// Sequential reference: per-pixel label = max pixel id in its 4-connected
/// equal-threshold region (which is what the SDL programs compute).
std::vector<int> reference_labels(const Image& img) {
  const int n = img.w * img.h;
  std::vector<int> parent(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int a, int b) { parent[static_cast<std::size_t>(find(a))] = find(b); };
  for (int y = 0; y < img.h; ++y) {
    for (int x = 0; x < img.w; ++x) {
      const int p = y * img.w + x;
      if (x + 1 < img.w && threshold(img.at(x, y)) == threshold(img.at(x + 1, y))) {
        unite(p, p + 1);
      }
      if (y + 1 < img.h && threshold(img.at(x, y)) == threshold(img.at(x, y + 1))) {
        unite(p, p + img.w);
      }
    }
  }
  std::vector<int> max_of(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const int root = find(i);
    max_of[static_cast<std::size_t>(root)] =
        std::max(max_of[static_cast<std::size_t>(root)], i);
  }
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = max_of[static_cast<std::size_t>(find(i))];
  }
  return labels;
}

void register_functions(Runtime& rt, const Image& img) {
  const int w = img.w;
  const int h = img.h;
  rt.functions().register_function("neighbor", [w, h](std::span<const Value> a) -> Value {
    const std::int64_t p = a[0].as_int();
    const std::int64_t q = a[1].as_int();
    if (p < 0 || q < 0 || p >= w * h || q >= w * h) return false;
    const std::int64_t px = p % w, py = p / w, qx = q % w, qy = q / w;
    return std::abs(px - qx) + std::abs(py - qy) == 1;
  });
  rt.functions().register_function("T", [](std::span<const Value> a) -> Value {
    return static_cast<std::int64_t>(threshold(static_cast<int>(a[0].as_int())));
  });
}

void seed_image(Runtime& rt, const Image& img) {
  for (int y = 0; y < img.h; ++y) {
    for (int x = 0; x < img.w; ++x) {
      rt.seed(tup("image", y * img.w + x, img.at(x, y)));
    }
  }
}

std::unordered_map<int, int> collect_labels(Runtime& rt, std::size_t label_arity,
                                            bool with_class) {
  std::unordered_map<int, int> out;
  rt.space().scan_arity(static_cast<std::uint32_t>(label_arity),
                        [&](const Record& r) {
                          if (r.tuple[0] == Value::atom("label")) {
                            const int p = static_cast<int>(r.tuple[1].as_int());
                            const int l = static_cast<int>(
                                r.tuple[with_class ? 3 : 2].as_int());
                            out[p] = l;
                          }
                          return true;
                        });
  return out;
}

/// Worker model (§3.3 Threshold_and_label): one replication does both the
/// thresholding and the label propagation.
std::unordered_map<int, int> run_worker_model(const Image& img) {
  RuntimeOptions o;
  o.scheduler.workers = 4;
  o.scheduler.replication_width = 4;
  Runtime rt(o);
  register_functions(rt, img);
  seed_image(rt, img);

  ProcessDef def;
  def.name = "ThresholdAndLabel";
  def.body = seq({replicate({
      branch(TxnBuilder()
                 .exists({"p", "v"})
                 .match(pat({A("image"), V("p"), V("v")}), true)
                 .assert_tuple({lit(Value::atom("threshold")), evar("p"),
                                call_fn("T", {evar("v")})})
                 .assert_tuple({lit(Value::atom("label")), evar("p"), evar("p")})
                 .build()),
      branch(TxnBuilder()
                 .exists({"p1", "p2", "t", "l1", "l2"})
                 .match(pat({A("threshold"), V("p1"), V("t")}))
                 .match(pat({A("threshold"), V("p2"), V("t")}))
                 .match(pat({A("label"), V("p1"), V("l1")}), true)
                 .match(pat({A("label"), V("p2"), V("l2")}), true)
                 .where(land(call_fn("neighbor", {evar("p1"), evar("p2")}),
                             lt(evar("l1"), evar("l2"))))
                 .assert_tuple({lit(Value::atom("label")), evar("p1"), evar("l2")})
                 .assert_tuple({lit(Value::atom("label")), evar("p2"), evar("l2")})
                 .build()),
  })});
  rt.define(std::move(def));
  rt.spawn("ThresholdAndLabel");
  const RunReport report = rt.run();
  if (!report.clean()) {
    std::cerr << "worker model did not quiesce cleanly\n";
    std::exit(1);
  }
  return collect_labels(rt, 3, /*with_class=*/false);
}

/// Community model (§3.3 Threshold + Label): per-pixel Label processes
/// with views confined to same-class neighbors; consensus per region.
/// Label tuples carry the threshold class: <label, p, t, l>.
std::unordered_map<int, int> run_community_model(const Image& img) {
  RuntimeOptions o;
  o.scheduler.workers = 4;
  o.scheduler.replication_width = 4;
  Runtime rt(o);
  register_functions(rt, img);
  seed_image(rt, img);

  ProcessDef thresh;
  thresh.name = "Threshold";
  thresh.body = seq({replicate({branch(
      TxnBuilder()
          .exists({"p", "v"})
          .match(pat({A("image"), V("p"), V("v")}), true)
          .assert_tuple({lit(Value::atom("label")), evar("p"),
                         call_fn("T", {evar("v")}), evar("p")})
          .spawn("Label", {evar("p"), call_fn("T", {evar("v")})})
          .build())})});
  rt.define(std::move(thresh));

  ProcessDef label;
  label.name = "Label";
  label.params = {"r", "t"};
  // Dynamic view: own label + labels of 4-neighbors in the same class.
  label.view.import(pat({A("label"), E(evar("r")), E(evar("t")), W()}));
  label.view.import(pat({A("label"), V("q"), E(evar("t")), W()}),
                    call_fn("neighbor", {evar("q"), evar("r")}));
  label.view.export_(pat({A("label"), E(evar("r")), W(), W()}));
  label.body = seq({repeat({
      // Adopt a greater neighboring label.
      branch(TxnBuilder()
                 .exists({"l1", "p2", "l2"})
                 .match(pat({A("label"), E(evar("r")), E(evar("t")), V("l1")}),
                        true)
                 .match(pat({A("label"), V("p2"), E(evar("t")), V("l2")}))
                 .where(gt(evar("l2"), evar("l1")))
                 .assert_tuple({lit(Value::atom("label")), evar("r"), evar("t"),
                                evar("l2")})
                 .build()),
      // Community consensus: nobody in my window outranks me -> done.
      branch(TxnBuilder(TxnType::Consensus)
                 .exists({"l1"})
                 .match(pat({A("label"), E(evar("r")), E(evar("t")), V("l1")}))
                 .none({pat({A("label"), V("q2"), E(evar("t")), V("l2")})},
                       gt(evar("l2"), evar("l1")))
                 .exit_()
                 .build()),
  })});
  rt.define(std::move(label));

  rt.spawn("Threshold");
  const RunReport report = rt.run();
  if (!report.clean()) {
    std::cerr << "community model did not quiesce cleanly ("
              << report.still_parked << " parked)\n";
    std::exit(1);
  }
  return collect_labels(rt, 4, /*with_class=*/true);
}

bool check(const char* name, const std::unordered_map<int, int>& got,
           const std::vector<int>& want) {
  if (got.size() != want.size()) {
    std::cout << name << ": label count mismatch (" << got.size() << " vs "
              << want.size() << ")\n";
    return false;
  }
  for (std::size_t p = 0; p < want.size(); ++p) {
    auto it = got.find(static_cast<int>(p));
    if (it == got.end() || it->second != want[p]) {
      std::cout << name << ": pixel " << p << " labeled "
                << (it == got.end() ? -1 : it->second) << ", want " << want[p]
                << "\n";
      return false;
    }
  }
  std::cout << name << ": all " << want.size() << " pixels correctly labeled\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int w = argc > 1 ? std::atoi(argv[1]) : 8;
  const int h = argc > 2 ? std::atoi(argv[2]) : 8;
  const Image img = make_image(w, h, 99);
  const std::vector<int> want = reference_labels(img);

  int regions = 0;
  {
    std::vector<bool> seen(static_cast<std::size_t>(w * h), false);
    for (const int l : want) {
      if (!seen[static_cast<std::size_t>(l)]) {
        seen[static_cast<std::size_t>(l)] = true;
        ++regions;
      }
    }
  }
  std::cout << w << "x" << h << " image, " << regions << " regions\n";

  bool ok = true;
  ok &= check("worker model   ", run_worker_model(img), want);
  ok &= check("community model", run_community_model(img), want);
  std::cout << (ok ? "region_labeling OK\n" : "region_labeling FAILED\n");
  return ok ? 0 : 1;
}
