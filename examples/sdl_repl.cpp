// sdl_repl — an interactive SDL session.
//
//   $ ./build/examples/sdl_repl
//   sdl> -> [year, 87]
//   committed  (+1 tuples)
//   sdl> exists a : [year, a]! when a > 80 -> let N = a, [found, a]
//   committed  a = 87  N = 87
//   sdl> :load examples/sdl/sort.sdl
//   sdl> :run
//   sdl> :dump
//
// Registers the same host functions as sdl_run so the shipped scripts
// work. Reads from stdin; also usable as a batch filter:
//   echo ':load examples/sdl/sum3.sdl
//   :run
//   :dump' | ./build/examples/sdl_repl
#include <unistd.h>

#include <iostream>
#include <string>

#include "lang/repl.hpp"

using namespace sdl;

int main() {
  lang::ReplSession session;

  constexpr std::int64_t kGridWidth = 16;
  session.runtime().functions().register_function(
      "neighbor", [](std::span<const Value> a) -> Value {
        const std::int64_t p = a[0].as_int();
        const std::int64_t q = a[1].as_int();
        const std::int64_t dx = p % kGridWidth - q % kGridWidth;
        const std::int64_t dy = p / kGridWidth - q / kGridWidth;
        return (dx * dx + dy * dy) == 1;
      });
  session.runtime().functions().register_function(
      "T", [](std::span<const Value> a) -> Value {
        return a[0].as_int() >= 128 ? 1 : 0;
      });

  const bool interactive = static_cast<bool>(isatty(0));
  if (interactive) {
    std::cout << "SDL repl — :help for commands, :quit to leave\n";
  }
  std::string line;
  while (!session.done()) {
    if (interactive) std::cout << "sdl> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    const std::string out = session.eval(line);
    if (!out.empty()) std::cout << out << "\n";
  }
  return 0;
}
