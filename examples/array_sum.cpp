// §3.1 Array Summation — all three of the paper's solutions.
//
//   Sum1: synchronous, phase-by-phase, consensus transactions as the
//         barrier between phases (the "Connection Machine" style).
//   Sum2: asynchronous, phase-tagged data, delayed transactions — each
//         process waits for exactly its two inputs.
//   Sum3: one replication, pairwise combining, "minimal control
//         constraints" — the paper's preferred solution.
//
// All three must agree with the sequential sum.
//
// Run:  ./build/examples/array_sum [log2_n]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "process/runtime.hpp"

using namespace sdl;

namespace {

std::vector<std::int64_t> make_array(int n, unsigned seed) {
  std::vector<std::int64_t> a(static_cast<std::size_t>(n));
  std::uint64_t state = seed * 2654435761u + 1;
  for (auto& x : a) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    x = static_cast<std::int64_t>((state >> 33) % 1000);
  }
  return a;
}

RuntimeOptions opts() {
  RuntimeOptions o;
  o.scheduler.workers = 4;
  o.scheduler.replication_width = 4;
  return o;
}

/// Sum1(k, j): combine, then a consensus barrier decides whether this
/// position continues into phase j+1.
ProcessDef sum1_def() {
  ProcessDef def;
  def.name = "Sum1";
  def.params = {"k", "j"};
  def.body = seq({
      stmt(TxnBuilder(TxnType::Delayed)
               .exists({"a", "b"})
               .match(pat({E(sub(evar("k"), pow_(lit(2), sub(evar("j"), lit(1))))),
                           V("a")}),
                      true)
               .match(pat({E(evar("k")), V("b")}), true)
               .assert_tuple({evar("k"), add(evar("a"), evar("b"))})
               .build()),
      select({
          branch(TxnBuilder(TxnType::Consensus)
                     .where(eq(mod(evar("k"), pow_(lit(2), add(evar("j"), lit(1)))),
                               lit(0)))
                     .spawn("Sum1", {evar("k"), add(evar("j"), lit(1))})
                     .build()),
          branch(TxnBuilder(TxnType::Consensus)
                     .where(ne(mod(evar("k"), pow_(lit(2), add(evar("j"), lit(1)))),
                               lit(0)))
                     .build()),
      }),
  });
  return def;
}

/// Sum2(k, j): purely asynchronous, phase tags ride on the data.
ProcessDef sum2_def() {
  ProcessDef def;
  def.name = "Sum2";
  def.params = {"k", "j"};
  def.body = seq({stmt(
      TxnBuilder(TxnType::Delayed)
          .exists({"a", "b"})
          .match(pat({E(sub(evar("k"), pow_(lit(2), sub(evar("j"), lit(1))))),
                      V("a"), E(evar("j"))}),
                 true)
          .match(pat({E(evar("k")), V("b"), E(evar("j"))}), true)
          .assert_tuple({evar("k"), add(evar("a"), evar("b")),
                         add(evar("j"), lit(1))})
          .build())});
  return def;
}

/// Sum3: the replication — any two tuples combine.
ProcessDef sum3_def() {
  ProcessDef def;
  def.name = "Sum3";
  def.body = seq({replicate({branch(TxnBuilder()
                                        .exists({"v", "a", "u", "b"})
                                        .match(pat({V("v"), V("a")}), true)
                                        .match(pat({V("u"), V("b")}), true)
                                        .where(ne(evar("v"), evar("u")))
                                        .assert_tuple({evar("u"),
                                                       add(evar("a"), evar("b"))})
                                        .build())})});
  return def;
}

std::int64_t run_sum1(const std::vector<std::int64_t>& a) {
  Runtime rt(opts());
  rt.define(sum1_def());
  const int n = static_cast<int>(a.size());
  for (int k = 1; k <= n; ++k) rt.seed(tup(k, a[static_cast<std::size_t>(k - 1)]));
  for (int k = 2; k <= n; k += 2) rt.spawn("Sum1", {Value(k), Value(1)});
  const RunReport report = rt.run();
  if (!report.clean()) {
    std::cerr << "Sum1 did not quiesce cleanly\n";
    std::exit(1);
  }
  std::int64_t result = -1;
  rt.space().scan_key(IndexKey::of_head(2, Value(n)), [&](const Record& r) {
    result = r.tuple[1].as_int();
    return true;
  });
  return result;
}

std::int64_t run_sum2(const std::vector<std::int64_t>& a) {
  Runtime rt(opts());
  rt.define(sum2_def());
  const int n = static_cast<int>(a.size());
  for (int k = 1; k <= n; ++k) {
    rt.seed(tup(k, a[static_cast<std::size_t>(k - 1)], 1));
  }
  for (int j = 1; (1 << j) <= n; ++j) {
    for (int k = 1; k <= n; ++k) {
      if (k % (1 << j) == 0) rt.spawn("Sum2", {Value(k), Value(j)});
    }
  }
  const RunReport report = rt.run();
  if (!report.clean()) {
    std::cerr << "Sum2 did not quiesce cleanly\n";
    std::exit(1);
  }
  std::int64_t result = -1;
  rt.space().scan_key(IndexKey::of_head(3, Value(n)), [&](const Record& r) {
    result = r.tuple[1].as_int();
    return true;
  });
  return result;
}

std::int64_t run_sum3(const std::vector<std::int64_t>& a) {
  Runtime rt(opts());
  rt.define(sum3_def());
  for (std::size_t k = 0; k < a.size(); ++k) {
    rt.seed(tup(static_cast<std::int64_t>(k + 1), a[k]));
  }
  rt.spawn("Sum3");
  const RunReport report = rt.run();
  if (!report.clean()) {
    std::cerr << "Sum3 did not quiesce cleanly\n";
    std::exit(1);
  }
  std::int64_t result = -1;
  rt.space().scan_arity(2, [&](const Record& r) {
    result = r.tuple[1].as_int();
    return true;
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int log2n = argc > 1 ? std::atoi(argv[1]) : 5;
  const int n = 1 << log2n;
  const std::vector<std::int64_t> a = make_array(n, 42);
  std::int64_t expected = 0;
  for (const std::int64_t x : a) expected += x;

  std::cout << "array of " << n << " values, sequential sum = " << expected << "\n";

  const std::int64_t s1 = run_sum1(a);
  std::cout << "Sum1 (synchronous, consensus barriers): " << s1 << "\n";
  const std::int64_t s2 = run_sum2(a);
  std::cout << "Sum2 (asynchronous, phase-tagged):      " << s2 << "\n";
  const std::int64_t s3 = run_sum3(a);
  std::cout << "Sum3 (replication, pairwise):           " << s3 << "\n";

  const bool ok = s1 == expected && s2 == expected && s3 == expected;
  std::cout << (ok ? "all three solutions agree: OK\n" : "MISMATCH\n");
  return ok ? 0 : 1;
}
